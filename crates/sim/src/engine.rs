//! A true per-node synchronous message-passing engine.
//!
//! Every node of the local communication graph runs its own [`NodeProgram`]
//! instance.  In each round the executor
//!
//! 1. hands every node the local and global messages addressed to it in the
//!    previous round,
//! 2. lets it perform arbitrary local computation and enqueue outgoing
//!    messages (local messages only to neighbours; global messages to any
//!    known node, subject to the per-round send cap `γ`),
//! 3. enforces the per-round global *receive* cap `γ`: excess messages are
//!    dropped (the paper's "adversary drops messages" reading, Section 1.3)
//!    and counted, so tests can assert that well-designed algorithms never
//!    exceed the bound.
//!
//! This engine is used for the simpler primitives (flooding, BFS, token
//! gossip) and to validate the phase engine against a fully explicit
//! execution; the heavy universal algorithms use the phase engine in
//! [`crate::network`].

use hybrid_graph::{Graph, NodeId};

use crate::params::ModelParams;

/// Per-round interface a node program uses to read its mailboxes and send
/// messages.
pub struct NodeCtx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    local_inbox: &'a [(NodeId, M)],
    global_inbox: &'a [(NodeId, M)],
    local_outbox: Vec<(NodeId, M)>,
    global_outbox: Vec<(NodeId, M)>,
    gamma: usize,
    global_send_overflow: u64,
}

impl<'a, M: Clone> NodeCtx<'a, M> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Neighbours in the local communication graph.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Local messages received this round as `(sender, message)` pairs.
    pub fn local_inbox(&self) -> &[(NodeId, M)] {
        self.local_inbox
    }

    /// Global messages received this round as `(sender, message)` pairs.
    pub fn global_inbox(&self) -> &[(NodeId, M)] {
        self.global_inbox
    }

    /// Sends a message over the local edge to `to`.
    ///
    /// # Panics
    /// Panics if `to` is not a neighbour — local communication only exists
    /// along edges of `G`.
    pub fn send_local(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(&to),
            "node {} tried to send a local message to non-neighbor {}",
            self.node,
            to
        );
        self.local_outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbour over the local network.
    pub fn broadcast_local(&mut self, msg: M) {
        for &nb in self.neighbors {
            self.local_outbox.push((nb, msg.clone()));
        }
    }

    /// Sends a global message to an arbitrary node.  Returns `false` (and does
    /// not send) if this node has already used its `γ` global sends this round.
    pub fn send_global(&mut self, to: NodeId, msg: M) -> bool {
        if self.global_outbox.len() >= self.gamma {
            self.global_send_overflow += 1;
            return false;
        }
        self.global_outbox.push((to, msg));
        true
    }

    /// Remaining global send budget this round.
    pub fn global_budget_left(&self) -> usize {
        self.gamma.saturating_sub(self.global_outbox.len())
    }
}

/// A per-node synchronous program.
pub trait NodeProgram {
    /// Message type exchanged by the program (same for local and global mode).
    type Msg: Clone;

    /// Called once before the first round (round 0), e.g. to seed initial
    /// messages.
    fn init(&mut self, _ctx: &mut NodeCtx<'_, Self::Msg>) {}

    /// Called once per round with the messages received at the beginning of
    /// the round.
    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, round: u64);

    /// Whether this node considers itself finished (it will still receive
    /// messages and may be woken up again).
    fn done(&self) -> bool;
}

/// Summary of an engine execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Local messages delivered.
    pub local_messages: u64,
    /// Global messages delivered.
    pub global_messages: u64,
    /// Global messages dropped because a receiver exceeded its per-round cap.
    pub dropped_global: u64,
    /// Global sends refused because a sender exceeded its per-round cap.
    pub refused_sends: u64,
    /// Whether the run ended because every program reported `done()`
    /// (otherwise the round limit was hit).
    pub completed: bool,
}

/// Synchronous executor running one [`NodeProgram`] per node.
pub struct Executor<'g, P: NodeProgram> {
    graph: &'g Graph,
    params: ModelParams,
    programs: Vec<P>,
    neighbor_lists: Vec<Vec<NodeId>>,
}

impl<'g, P: NodeProgram> Executor<'g, P> {
    /// Creates an executor with one program per node (programs are produced by
    /// the factory, which receives the node id).
    pub fn new(graph: &'g Graph, params: ModelParams, factory: impl FnMut(NodeId) -> P) -> Self {
        assert_eq!(params.n, graph.n());
        let programs: Vec<P> = graph.nodes().map(factory).collect();
        let neighbor_lists: Vec<Vec<NodeId>> =
            graph.nodes().map(|v| graph.neighbors(v).collect()).collect();
        Executor {
            graph,
            params,
            programs,
            neighbor_lists,
        }
    }

    /// Read access to the per-node programs (e.g. to extract results).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Runs until every program reports `done()` or `max_rounds` is reached.
    pub fn run(&mut self, max_rounds: u64) -> RunReport {
        self.run_until(max_rounds, |programs| programs.iter().all(|p| p.done()))
    }

    /// Runs until `stop(programs)` holds (checked after every round) or
    /// `max_rounds` is reached.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        stop: impl Fn(&[P]) -> bool,
    ) -> RunReport {
        let n = self.graph.n();
        let gamma = self.params.global_capacity_msgs;
        let local_enabled = self.params.has_local();

        let mut local_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut global_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];

        let mut report = RunReport {
            rounds: 0,
            local_messages: 0,
            global_messages: 0,
            dropped_global: 0,
            refused_sends: 0,
            completed: false,
        };

        // Init pass (round 0): no inboxes yet.
        let mut next_local: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut next_global: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut next_global_counts: Vec<usize> = vec![0; n];
        for v in 0..n {
            let mut ctx = NodeCtx {
                node: v as NodeId,
                neighbors: &self.neighbor_lists[v],
                local_inbox: &[],
                global_inbox: &[],
                local_outbox: Vec::new(),
                global_outbox: Vec::new(),
                gamma,
                global_send_overflow: 0,
            };
            self.programs[v].init(&mut ctx);
            report.refused_sends += ctx.global_send_overflow;
            Self::route(
                v as NodeId,
                ctx,
                local_enabled,
                gamma,
                &mut next_local,
                &mut next_global,
                &mut next_global_counts,
                &mut report,
            );
        }
        std::mem::swap(&mut local_inboxes, &mut next_local);
        std::mem::swap(&mut global_inboxes, &mut next_global);

        if stop(&self.programs) {
            report.completed = true;
            return report;
        }

        for round in 1..=max_rounds {
            report.rounds = round;
            let mut out_local: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut out_global: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut out_global_counts: Vec<usize> = vec![0; n];
            for v in 0..n {
                let mut ctx = NodeCtx {
                    node: v as NodeId,
                    neighbors: &self.neighbor_lists[v],
                    local_inbox: &local_inboxes[v],
                    global_inbox: &global_inboxes[v],
                    local_outbox: Vec::new(),
                    global_outbox: Vec::new(),
                    gamma,
                    global_send_overflow: 0,
                };
                self.programs[v].on_round(&mut ctx, round);
                report.refused_sends += ctx.global_send_overflow;
                Self::route(
                    v as NodeId,
                    ctx,
                    local_enabled,
                    gamma,
                    &mut out_local,
                    &mut out_global,
                    &mut out_global_counts,
                    &mut report,
                );
            }
            local_inboxes = out_local;
            global_inboxes = out_global;

            if stop(&self.programs) {
                report.completed = true;
                return report;
            }
        }
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn route(
        _from: NodeId,
        ctx: NodeCtx<'_, P::Msg>,
        local_enabled: bool,
        gamma: usize,
        out_local: &mut [Vec<(NodeId, P::Msg)>],
        out_global: &mut [Vec<(NodeId, P::Msg)>],
        out_global_counts: &mut [usize],
        report: &mut RunReport,
    ) {
        let sender = ctx.node;
        if !ctx.local_outbox.is_empty() {
            assert!(
                local_enabled,
                "node {sender} sent local messages but the model has no local mode"
            );
        }
        for (to, msg) in ctx.local_outbox {
            out_local[to as usize].push((sender, msg));
            report.local_messages += 1;
        }
        for (to, msg) in ctx.global_outbox {
            if out_global_counts[to as usize] < gamma {
                out_global_counts[to as usize] += 1;
                out_global[to as usize].push((sender, msg));
                report.global_messages += 1;
            } else {
                report.dropped_global += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators;

    /// A trivial program: node 0 starts a wave; every node forwards the wave
    /// to its neighbours once; done when it has seen the wave.
    struct Wave {
        id: NodeId,
        seen: bool,
        forwarded: bool,
    }

    impl NodeProgram for Wave {
        type Msg = ();

        fn init(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if self.id == 0 {
                self.seen = true;
                self.forwarded = true;
                ctx.broadcast_local(());
            }
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, _round: u64) {
            if !ctx.local_inbox().is_empty() {
                self.seen = true;
            }
            if self.seen && !self.forwarded {
                self.forwarded = true;
                ctx.broadcast_local(());
            }
        }

        fn done(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn wave_reaches_everyone_in_diameter_rounds() {
        let g = generators::path(10).unwrap();
        let params = ModelParams::hybrid(10);
        let mut exec = Executor::new(&g, params, |id| Wave {
            id,
            seen: false,
            forwarded: false,
        });
        let report = exec.run(100);
        assert!(report.completed);
        assert_eq!(report.rounds, 9);
        assert!(exec.programs().iter().all(|p| p.seen));
        assert_eq!(report.dropped_global, 0);
    }

    /// Program where everyone sends a global message to node 0 in round 1;
    /// with small gamma most messages are dropped — the engine must count them.
    struct Spam {
        id: NodeId,
        received: usize,
    }

    impl NodeProgram for Spam {
        type Msg = u32;

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, u32>, round: u64) {
            if round == 1 && self.id != 0 {
                ctx.send_global(0, self.id);
            }
            self.received += ctx.global_inbox().len();
        }

        fn done(&self) -> bool {
            false
        }
    }

    #[test]
    fn receive_cap_drops_excess() {
        let g = generators::star(20).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(20, 4);
        let mut exec = Executor::new(&g, params, |id| Spam { id, received: 0 });
        let report = exec.run_until(3, |_| false);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.global_messages, 4);
        assert_eq!(report.dropped_global, 15);
        assert_eq!(exec.programs()[0].received, 4);
    }

    /// Sender-side cap: a node trying to send more than gamma global messages
    /// in one round has the excess refused.
    struct Blaster {
        id: NodeId,
        refused: bool,
    }

    impl NodeProgram for Blaster {
        type Msg = ();

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, round: u64) {
            if round == 1 && self.id == 0 {
                for t in 1..10u32 {
                    if !ctx.send_global(t, ()) {
                        self.refused = true;
                    }
                }
                assert_eq!(ctx.global_budget_left(), 0);
            }
        }

        fn done(&self) -> bool {
            true
        }
    }

    #[test]
    fn send_cap_refuses_excess() {
        let g = generators::cycle(10).unwrap();
        let params = ModelParams::hybrid_with_global_capacity(10, 3);
        let mut exec = Executor::new(&g, params, |id| Blaster { id, refused: false });
        let report = exec.run_until(1, |_| false);
        assert_eq!(report.global_messages, 3);
        assert_eq!(report.refused_sends, 6);
        assert!(exec.programs()[0].refused);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn local_send_to_non_neighbor_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>, _round: u64) {
                if ctx.node() == 0 {
                    ctx.send_local(5, ());
                }
            }
            fn done(&self) -> bool {
                false
            }
        }
        let g = generators::path(10).unwrap();
        let mut exec = Executor::new(&g, ModelParams::hybrid(10), |_| Bad);
        exec.run_until(1, |_| false);
    }
}
