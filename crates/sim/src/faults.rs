//! Seeded, deterministic fault injection shared by both simulation engines.
//!
//! The paper's model is failure-free — its lower-bound witnesses (Theorems 4,
//! 10–12) assume every scheduled message arrives — but the engine already
//! implements the "adversary drops messages" reading of the γ receive cap
//! (Section 1.3), and the natural robustness question is how far measured
//! rounds degrade once the adversary is first-class.  This module makes that
//! adversary a value: a [`FaultPlan`] is a pure function from
//! `(round, sender, receiver, message index)` to a [`Fate`], plus precomputed
//! per-node crash-restart intervals and a transient local-graph partition.
//!
//! # Determinism
//!
//! A plan derives one per-run key from its seed through a `ChaCha8` stream
//! (the same generator every experiment seed flows through), and every
//! per-message decision is a SplitMix64-style hash of that key and the
//! message coordinates — the per-round analogue of the sweep's per-cell
//! substreams.  There is **no mutable RNG state**: two engines (or two
//! thread counts) asking for the same coordinates always get the same fate,
//! which is what keeps the per-node engine ([`crate::engine`]) and the phase
//! engine ([`crate::network`] / [`crate::scheduler`]) comparable under the
//! identical fault plan, and keeps every fault sweep bit-identical across
//! `RAYON_NUM_THREADS`.
//!
//! # Fault classes
//!
//! * **Message faults** — each delivery attempt is independently dropped,
//!   duplicated (one extra copy, consuming capacity) or delayed (held for a
//!   bounded number of rounds) with the [`FaultSpec`] probabilities.  A
//!   retransmission is a *new* attempt at a later round, so it draws a fresh
//!   fate — the adversary is oblivious, not adaptive.
//! * **Node crash-restart** — a node crashes at a seeded round and sleeps for
//!   [`FaultSpec::crash_down_rounds`] rounds: it executes no program steps and
//!   receives nothing while down, but its state survives (the crash-*restart*
//!   model; a fail-stop model would be `crash_down_rounds = u64::MAX`, which
//!   breaks the completion guarantees below and is deliberately saturated
//!   rather than special-cased).
//! * **Partition** — during a seeded window, local edges crossing a random
//!   bipartition of the nodes are severed.  Transient by construction, so a
//!   connected graph has a connected *residual* graph once the window closes.
//!
//! Because crashes restart and partitions close, every (neighbour, token)
//! retransmission attempt succeeds with probability bounded away from zero
//! whenever `drop_prob < 1` — which is exactly the hypothesis of the
//! ack/retry dissemination guarantee pinned in [`crate::programs`].

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Round at which a node never crashes.
const NEVER: u64 = u64::MAX;

/// Hash salts separating the independent per-plan decision families.
const SALT_CRASH_IF: u64 = 0x01;
const SALT_CRASH_AT: u64 = 0x02;
const SALT_SIDE: u64 = 0x03;
const SALT_FATE: u64 = 0x04;

/// Distributional description of an adversary: per-message fault
/// probabilities, the crash-restart schedule shape and the partition window.
/// All probabilities are per *delivery attempt* (a retransmission draws a
/// fresh decision).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability a delivery attempt is dropped.
    pub drop_prob: f64,
    /// Probability a delivery attempt is duplicated (delivered twice; the
    /// extra copy consumes send/receive capacity like any other message).
    pub duplicate_prob: f64,
    /// Probability a delivery attempt is delayed.
    pub delay_prob: f64,
    /// Maximum delay in rounds (a delayed message is held `1..=max_delay_rounds`).
    pub max_delay_rounds: u64,
    /// Probability a node crashes at all during the crash horizon.
    pub crash_prob: f64,
    /// How many rounds a crashed node stays down before restarting.
    pub crash_down_rounds: u64,
    /// Crash times are seeded uniformly in `1..=crash_horizon_rounds`.
    pub crash_horizon_rounds: u64,
    /// First round of the partition window (`0` disables the partition).
    pub partition_start: u64,
    /// Length of the partition window in rounds.
    pub partition_rounds: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultSpec {
    /// The failure-free spec: every fate is [`Fate::Deliver`].
    pub fn none() -> Self {
        FaultSpec {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay_rounds: 0,
            crash_prob: 0.0,
            crash_down_rounds: 0,
            crash_horizon_rounds: 0,
            partition_start: 0,
            partition_rounds: 0,
        }
    }

    /// A message-drop-only adversary with the given per-attempt probability.
    pub fn drop_only(drop_prob: f64) -> Self {
        FaultSpec {
            drop_prob,
            ..Self::none()
        }
    }

    /// Whether every fate this spec can produce is [`Fate::Deliver`].
    pub fn is_failure_free(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.crash_prob == 0.0
            && self.partition_rounds == 0
    }
}

/// The fate of one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice (the extra copy costs capacity).
    Duplicate,
    /// Held for this many extra rounds, then delivered.
    Delay(u64),
}

/// A concrete, seeded fault schedule over an `n`-node execution: the
/// stateless per-message [`FaultPlan::fate`] function plus the precomputed
/// crash intervals and partition sides.  Cheap to clone (two `Vec`s).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-run key, drawn from a ChaCha8 stream seeded with the plan seed.
    key: u64,
    /// Per-node crash round (`NEVER` = the node never crashes).
    crash_at: Vec<u64>,
    /// Per-node partition side bit.
    side: Vec<bool>,
}

/// SplitMix64 finalizer — the same mixer the sweep uses for per-cell streams.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a unit-interval sample (53 mantissa bits, like `rand`).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Builds the plan for an `n`-node execution.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`, if the message-fault
    /// probabilities sum past 1, or if a delay/crash probability is positive
    /// while its duration parameter is zero (a silent no-op would make a
    /// sweep row lie about its adversary).
    pub fn new(spec: FaultSpec, seed: u64, n: usize) -> Self {
        for (name, p) in [
            ("drop_prob", spec.drop_prob),
            ("duplicate_prob", spec.duplicate_prob),
            ("delay_prob", spec.delay_prob),
            ("crash_prob", spec.crash_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} not in [0, 1]");
        }
        assert!(
            spec.drop_prob + spec.duplicate_prob + spec.delay_prob <= 1.0 + 1e-12,
            "message fault probabilities sum past 1"
        );
        assert!(
            spec.delay_prob == 0.0 || spec.max_delay_rounds > 0,
            "delay_prob > 0 requires max_delay_rounds > 0"
        );
        assert!(
            spec.crash_prob == 0.0 || (spec.crash_down_rounds > 0 && spec.crash_horizon_rounds > 0),
            "crash_prob > 0 requires crash_down_rounds > 0 and crash_horizon_rounds > 0"
        );
        // One ChaCha8 draw turns an arbitrary user seed into a well-mixed
        // per-run key; all per-decision streams hash off that key.
        let key = ChaCha8Rng::seed_from_u64(seed).next_u64();
        let crash_at: Vec<u64> = (0..n as u64)
            .map(|v| {
                if spec.crash_prob > 0.0
                    && unit(splitmix(key ^ splitmix(v ^ SALT_CRASH_IF))) < spec.crash_prob
                {
                    1 + splitmix(key ^ splitmix(v ^ SALT_CRASH_AT))
                        % spec.crash_horizon_rounds.max(1)
                } else {
                    NEVER
                }
            })
            .collect();
        let side: Vec<bool> = (0..n as u64)
            .map(|v| splitmix(key ^ splitmix(v ^ SALT_SIDE)) & 1 == 1)
            .collect();
        FaultPlan {
            spec,
            key,
            crash_at,
            side,
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The node count this plan was built for.
    pub fn n(&self) -> usize {
        self.crash_at.len()
    }

    /// Whether this plan can never produce a fault (see
    /// [`FaultSpec::is_failure_free`]).
    pub fn is_failure_free(&self) -> bool {
        self.spec.is_failure_free()
    }

    /// The fate of delivery attempt `idx` from `from` to `to` in `round` — a
    /// pure function of the coordinates, so both engines and every thread
    /// count agree on it.  `idx` disambiguates multiple attempts with the
    /// same endpoints in the same round.
    pub fn fate(&self, round: u64, from: u32, to: u32, idx: u64) -> Fate {
        let s = &self.spec;
        if s.drop_prob == 0.0 && s.duplicate_prob == 0.0 && s.delay_prob == 0.0 {
            return Fate::Deliver;
        }
        let h = splitmix(
            self.key
                ^ splitmix(round ^ SALT_FATE)
                ^ splitmix((from as u64) << 32 | to as u64)
                ^ splitmix(idx.wrapping_mul(0xD134_2543_DE82_EF95)),
        );
        let u = unit(h);
        if u < s.drop_prob {
            Fate::Drop
        } else if u < s.drop_prob + s.duplicate_prob {
            Fate::Duplicate
        } else if u < s.drop_prob + s.duplicate_prob + s.delay_prob {
            // Reuse the high bits for the delay length: independent enough
            // of the fate threshold (different bit range of the same hash).
            Fate::Delay(1 + (h >> 7) % s.max_delay_rounds.max(1))
        } else {
            Fate::Deliver
        }
    }

    /// Whether `node` is crashed (asleep) in `round`.
    pub fn is_down(&self, node: u32, round: u64) -> bool {
        let at = self.crash_at[node as usize];
        at != NEVER && round >= at && round < at.saturating_add(self.spec.crash_down_rounds)
    }

    /// Whether the partition window severs the local edge `{u, v}` in `round`.
    pub fn cuts_local_edge(&self, u: u32, v: u32, round: u64) -> bool {
        self.spec.partition_rounds > 0
            && round >= self.spec.partition_start
            && round
                < self
                    .spec
                    .partition_start
                    .saturating_add(self.spec.partition_rounds)
            && self.side[u as usize] != self.side[v as usize]
    }

    /// The rounds by which every crash interval and the partition window have
    /// passed — an upper bound on how long the adversary can block a fixed
    /// pair of nodes outright (message faults keep applying forever).
    pub fn quiescent_after(&self) -> u64 {
        let crash_end = self
            .crash_at
            .iter()
            .filter(|&&at| at != NEVER)
            .map(|&at| at.saturating_add(self.spec.crash_down_rounds))
            .max()
            .unwrap_or(0);
        let partition_end = if self.spec.partition_rounds > 0 {
            self.spec
                .partition_start
                .saturating_add(self.spec.partition_rounds)
        } else {
            0
        };
        crash_end.max(partition_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_plan_always_delivers() {
        let plan = FaultPlan::new(FaultSpec::none(), 42, 16);
        assert!(plan.is_failure_free());
        for round in 0..50 {
            for idx in 0..10 {
                assert_eq!(plan.fate(round, 0, 1, idx), Fate::Deliver);
            }
            for v in 0..16 {
                assert!(!plan.is_down(v, round));
                assert!(!plan.cuts_local_edge(v, (v + 1) % 16, round));
            }
        }
        assert_eq!(plan.quiescent_after(), 0);
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay_prob: 0.1,
            max_delay_rounds: 4,
            ..FaultSpec::none()
        };
        let a = FaultPlan::new(spec, 7, 8);
        let b = FaultPlan::new(spec, 7, 8);
        let c = FaultPlan::new(spec, 8, 8);
        let mut diverged = false;
        for round in 0..64 {
            for idx in 0..4 {
                let fa = a.fate(round, 1, 2, idx);
                assert_eq!(fa, b.fate(round, 1, 2, idx), "same seed must agree");
                if fa != c.fate(round, 1, 2, idx) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds should produce different fates");
    }

    #[test]
    fn drop_frequency_tracks_the_probability() {
        let plan = FaultPlan::new(FaultSpec::drop_only(0.4), 123, 4);
        let attempts = 20_000u64;
        let drops = (0..attempts)
            .filter(|&i| plan.fate(i / 50, (i % 3) as u32, 3, i) == Fate::Drop)
            .count() as f64;
        let rate = drops / attempts as f64;
        assert!((rate - 0.4).abs() < 0.02, "measured drop rate {rate}");
    }

    #[test]
    fn delay_lengths_stay_in_bounds() {
        let spec = FaultSpec {
            delay_prob: 1.0,
            max_delay_rounds: 5,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 3, 4);
        for i in 0..1000 {
            match plan.fate(i, 0, 1, i) {
                Fate::Delay(d) => assert!((1..=5).contains(&d), "delay {d} out of range"),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_intervals_are_restarting_and_bounded() {
        let spec = FaultSpec {
            crash_prob: 1.0,
            crash_down_rounds: 3,
            crash_horizon_rounds: 10,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 99, 32);
        for v in 0..32u32 {
            let down: Vec<u64> = (0..40).filter(|&r| plan.is_down(v, r)).collect();
            assert_eq!(down.len(), 3, "node {v} must be down exactly 3 rounds");
            assert!(down[0] >= 1 && down[0] <= 10, "crash in the horizon");
            assert_eq!(down[2] - down[0], 2, "down interval is contiguous");
            assert!(!plan.is_down(v, plan.quiescent_after()));
        }
    }

    #[test]
    fn partition_cuts_only_cross_edges_inside_the_window() {
        let spec = FaultSpec {
            partition_start: 5,
            partition_rounds: 4,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 21, 64);
        let mut cut_any = false;
        let mut kept_any = false;
        for u in 0..63u32 {
            let v = u + 1;
            assert!(!plan.cuts_local_edge(u, v, 4), "window starts at 5");
            assert!(!plan.cuts_local_edge(u, v, 9), "window ends before 9");
            if plan.cuts_local_edge(u, v, 5) {
                cut_any = true;
                assert!(plan.cuts_local_edge(u, v, 8));
            } else {
                kept_any = true;
            }
        }
        assert!(cut_any && kept_any, "a random bipartition cuts some edges");
        assert_eq!(plan.quiescent_after(), 9);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn out_of_range_probability_panics() {
        FaultPlan::new(FaultSpec::drop_only(1.5), 0, 4);
    }

    #[test]
    #[should_panic(expected = "sum past 1")]
    fn oversubscribed_fates_panic() {
        let spec = FaultSpec {
            drop_prob: 0.6,
            duplicate_prob: 0.3,
            delay_prob: 0.3,
            max_delay_rounds: 1,
            ..FaultSpec::none()
        };
        FaultPlan::new(spec, 0, 4);
    }

    #[test]
    #[should_panic(expected = "requires max_delay_rounds")]
    fn delay_without_duration_panics() {
        let spec = FaultSpec {
            delay_prob: 0.1,
            ..FaultSpec::none()
        };
        FaultPlan::new(spec, 0, 4);
    }
}
