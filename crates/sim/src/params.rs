//! Model parameters for `HYBRID(λ, γ)` and its marginal cases.
//!
//! The paper (Section 1.3) parameterizes the model by
//!
//! * `λ` — the maximum number of bits per round per **local** edge, and
//! * `γ` — the maximum number of bits per round per node over the **global**
//!   network,
//!
//! and observes that most classical models are special cases:
//!
//! | model              | λ          | γ              |
//! |--------------------|------------|----------------|
//! | `HYBRID`           | ∞          | `O(log² n)`    |
//! | `LOCAL`            | ∞          | 0              |
//! | `CONGEST`          | `O(log n)` | 0              |
//! | `NCC` / `NCC0`     | 0          | `O(log² n)`    |
//! | Congested Clique   | 0          | `O(n log n)`   |
//!
//! This module measures global capacity in **messages of `O(log n)` bits per
//! round** (`global_capacity_msgs`), which is how the algorithms reason about
//! it; `γ` in bits is `global_capacity_msgs · ⌈log₂ n⌉`.

use serde::{Deserialize, Serialize};

/// How node identifiers are assigned — distinguishes `Hybrid` from `Hybrid0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdSpace {
    /// `Hybrid`: identifiers are exactly `[n] = {1, …, n}` (represented
    /// internally as `0..n`), and the set of identifiers is global knowledge,
    /// so a node can message a uniformly random node.
    Contiguous,
    /// `Hybrid0`: identifiers are arbitrary `O(log n)`-bit strings from a
    /// polynomial range `[n^c]`; initially a node only knows its own
    /// identifier and those of its neighbours, so it can only send global
    /// messages to nodes whose identifiers it has learned.
    Arbitrary {
        /// Exponent `c` of the identifier range `[n^c]`.
        range_exponent: u32,
    },
}

/// Bandwidth of a local edge per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalBandwidth {
    /// Unlimited-size messages (LOCAL-style local mode of HYBRID).
    Unlimited,
    /// At most this many bits per round per edge (CONGEST-style).
    BoundedBits(u64),
    /// No local communication at all (NCC / Congested Clique marginal cases).
    None,
}

/// Full parameterization of a simulated `HYBRID(λ, γ)` network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Number of nodes `n` of the local communication graph.
    pub n: usize,
    /// Local-edge bandwidth `λ`.
    pub local: LocalBandwidth,
    /// Per-node global capacity in messages of `O(log n)` bits per round
    /// (send cap and receive cap, enforced independently).
    pub global_capacity_msgs: usize,
    /// Identifier regime (`Hybrid` vs `Hybrid0`).
    pub id_space: IdSpace,
}

impl ModelParams {
    /// `⌈log₂ n⌉`, at least 1 — the paper's `O(log n)` unit.
    pub fn log_n(n: usize) -> usize {
        let n = n.max(2);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// The standard `HYBRID` model: unlimited local bandwidth, `⌈log₂ n⌉`
    /// global messages per node per round, identifiers `[n]` known to all.
    pub fn hybrid(n: usize) -> Self {
        ModelParams {
            n,
            local: LocalBandwidth::Unlimited,
            global_capacity_msgs: Self::log_n(n),
            id_space: IdSpace::Contiguous,
        }
    }

    /// The `Hybrid0` model: like [`ModelParams::hybrid`] but identifiers come
    /// from a polynomial range and are not globally known.
    pub fn hybrid0(n: usize) -> Self {
        ModelParams {
            id_space: IdSpace::Arbitrary { range_exponent: 2 },
            ..Self::hybrid(n)
        }
    }

    /// `HYBRID(∞, γ)` with an explicit per-node global message budget
    /// (`γ` in messages per round), as used by Theorem 14.
    pub fn hybrid_with_global_capacity(n: usize, gamma_msgs: usize) -> Self {
        ModelParams {
            global_capacity_msgs: gamma_msgs,
            ..Self::hybrid(n)
        }
    }

    /// The `LOCAL` model: `HYBRID0(∞, 0)`.
    pub fn local_only(n: usize) -> Self {
        ModelParams {
            n,
            local: LocalBandwidth::Unlimited,
            global_capacity_msgs: 0,
            id_space: IdSpace::Arbitrary { range_exponent: 2 },
        }
    }

    /// The `CONGEST` model: `HYBRID0(O(log n), 0)`.
    pub fn congest(n: usize) -> Self {
        ModelParams {
            n,
            local: LocalBandwidth::BoundedBits(Self::log_n(n) as u64),
            global_capacity_msgs: 0,
            id_space: IdSpace::Arbitrary { range_exponent: 2 },
        }
    }

    /// The node-capacitated clique `NCC`: `HYBRID(0, O(log² n))`.
    pub fn ncc(n: usize) -> Self {
        ModelParams {
            n,
            local: LocalBandwidth::None,
            global_capacity_msgs: Self::log_n(n),
            id_space: IdSpace::Contiguous,
        }
    }

    /// The Congested Clique: `HYBRID(0, O(n log n))`.
    pub fn congested_clique(n: usize) -> Self {
        ModelParams {
            n,
            local: LocalBandwidth::None,
            global_capacity_msgs: n,
            id_space: IdSpace::Contiguous,
        }
    }

    /// Whether the model allows any local communication.
    pub fn has_local(&self) -> bool {
        !matches!(self.local, LocalBandwidth::None)
    }

    /// Whether the model allows any global communication.
    pub fn has_global(&self) -> bool {
        self.global_capacity_msgs > 0
    }

    /// Whether identifiers are globally known (`Hybrid`) or not (`Hybrid0`).
    pub fn ids_globally_known(&self) -> bool {
        matches!(self.id_space, IdSpace::Contiguous)
    }

    /// Global capacity in bits per round (`γ`).
    pub fn gamma_bits(&self) -> u64 {
        (self.global_capacity_msgs * Self::log_n(self.n)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_n_is_ceiling() {
        assert_eq!(ModelParams::log_n(1), 1);
        assert_eq!(ModelParams::log_n(2), 1);
        assert_eq!(ModelParams::log_n(3), 2);
        assert_eq!(ModelParams::log_n(1024), 10);
        assert_eq!(ModelParams::log_n(1025), 11);
    }

    #[test]
    fn hybrid_defaults() {
        let p = ModelParams::hybrid(1000);
        assert_eq!(p.global_capacity_msgs, 10);
        assert!(p.has_local());
        assert!(p.has_global());
        assert!(p.ids_globally_known());
        assert_eq!(p.gamma_bits(), 100);
    }

    #[test]
    fn hybrid0_hides_ids() {
        let p = ModelParams::hybrid0(64);
        assert!(!p.ids_globally_known());
        assert!(p.has_local());
        assert!(p.has_global());
    }

    #[test]
    fn marginal_models_match_paper_table() {
        let local = ModelParams::local_only(100);
        assert!(local.has_local() && !local.has_global());
        let congest = ModelParams::congest(100);
        assert!(matches!(congest.local, LocalBandwidth::BoundedBits(7)));
        assert!(!congest.has_global());
        let ncc = ModelParams::ncc(100);
        assert!(!ncc.has_local() && ncc.has_global());
        let cc = ModelParams::congested_clique(100);
        assert_eq!(cc.global_capacity_msgs, 100);
    }

    #[test]
    fn explicit_gamma() {
        let p = ModelParams::hybrid_with_global_capacity(256, 64);
        assert_eq!(p.global_capacity_msgs, 64);
        assert!(p.ids_globally_known());
    }
}
