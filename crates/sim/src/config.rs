//! One configuration surface for every engine.
//!
//! Engine knobs used to be scattered: `Executor::set_fault_plan`,
//! `HybridNetwork::set_fault_plan`, and a `max_rounds` argument on every
//! `run` call.  [`EngineConfig`] collapses them into a single builder —
//! model parameters, scenario seed, fault plan, round cap, trace recording —
//! accepted by the in-process [`Executor`](crate::engine::Executor), the
//! phase engine [`HybridNetwork`](crate::network::HybridNetwork), and the
//! networked `hybrid-driver`, so a scenario is described once and runs
//! identically in all three.
//!
//! [`EngineError`] is the typed counterpart of the old silent round cap:
//! `run`/`run_until` now fail loudly with the partial [`RunReport`] attached
//! when the cap is exhausted before the stop condition holds, so callers can
//! no longer mistake truncation for convergence.

use crate::engine::RunReport;
use crate::faults::FaultPlan;
use crate::params::ModelParams;

/// Round cap used when a configuration does not set one explicitly.
pub const DEFAULT_MAX_ROUNDS: u64 = 10_000;

/// Unified engine configuration: model parameters, seed, fault plan, round
/// cap and trace recording, built fluently:
///
/// ```
/// use hybrid_sim::{EngineConfig, ModelParams};
/// let config = EngineConfig::new(ModelParams::hybrid(16))
///     .with_seed(7)
///     .with_max_rounds(500)
///     .with_trace(true);
/// assert_eq!(config.max_rounds(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    params: ModelParams,
    seed: u64,
    fault_plan: Option<FaultPlan>,
    max_rounds: u64,
    record_trace: bool,
}

impl EngineConfig {
    /// Starts a configuration from model parameters, with no faults, seed 0,
    /// the [`DEFAULT_MAX_ROUNDS`] round cap and trace recording off.
    pub fn new(params: ModelParams) -> Self {
        EngineConfig {
            params,
            seed: 0,
            fault_plan: None,
            max_rounds: DEFAULT_MAX_ROUNDS,
            record_trace: false,
        }
    }

    /// Sets the scenario seed (randomized programs and drivers derive their
    /// per-node streams from it; the engines themselves draw no random bits).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault plan.  A failure-free plan is normalized to none, so
    /// `has_faults` stays meaningful.
    ///
    /// # Panics
    /// Panics if the plan was built for a different node count than
    /// `params.n`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        assert_eq!(
            plan.n(),
            self.params.n,
            "fault plan is for {} nodes but the model has {}",
            plan.n(),
            self.params.n
        );
        self.fault_plan = if plan.is_failure_free() {
            None
        } else {
            Some(plan)
        };
        self
    }

    /// Sets the round cap after which `run`/`run_until` report
    /// [`EngineError::RoundLimitExceeded`].
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables or disables per-round delivered-message trace recording
    /// (see [`RoundTrace`](crate::envelope::RoundTrace)).  Off by default —
    /// recording serializes every delivered payload, so the fast path keeps
    /// its zero-serialization property only while this is off.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Installed fault plan, if any (failure-free plans normalize to `None`).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Round cap.
    pub fn max_rounds(&self) -> u64 {
        self.max_rounds
    }

    /// Whether per-round traces are recorded.
    pub fn record_trace(&self) -> bool {
        self.record_trace
    }
}

/// Typed failure of an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The configured round cap was exhausted before the stop condition
    /// held.  The partial report describes everything up to the cap, so
    /// diagnostics lose nothing — but truncation can no longer masquerade
    /// as convergence.
    RoundLimitExceeded {
        /// The configured cap that was hit.
        limit: u64,
        /// The (incomplete) run up to the cap.
        report: RunReport,
    },
}

impl EngineError {
    /// Extracts the partial run report.
    pub fn into_report(self) -> RunReport {
        match self {
            EngineError::RoundLimitExceeded { report, .. } => report,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit, .. } => {
                write!(f, "round limit of {limit} exhausted before completion")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;

    #[test]
    fn builder_defaults_and_setters() {
        let config = EngineConfig::new(ModelParams::hybrid(8));
        assert_eq!(config.seed(), 0);
        assert_eq!(config.max_rounds(), DEFAULT_MAX_ROUNDS);
        assert!(config.fault_plan().is_none());
        assert!(!config.record_trace());

        let config = config.with_seed(42).with_max_rounds(99).with_trace(true);
        assert_eq!(config.seed(), 42);
        assert_eq!(config.max_rounds(), 99);
        assert!(config.record_trace());
    }

    #[test]
    fn failure_free_plans_normalize_to_none() {
        let config = EngineConfig::new(ModelParams::hybrid(8)).with_fault_plan(FaultPlan::new(
            FaultSpec::none(),
            1,
            8,
        ));
        assert!(config.fault_plan().is_none());
        let config = config.with_fault_plan(FaultPlan::new(FaultSpec::drop_only(0.5), 1, 8));
        assert!(config.fault_plan().is_some());
    }

    #[test]
    #[should_panic(expected = "fault plan is for")]
    fn mismatched_fault_plan_panics_at_build_time() {
        let _ = EngineConfig::new(ModelParams::hybrid(16)).with_fault_plan(FaultPlan::new(
            FaultSpec::drop_only(0.1),
            0,
            8,
        ));
    }

    #[test]
    fn engine_error_displays_and_unwraps() {
        let report = RunReport {
            rounds: 5,
            local_messages: 0,
            global_messages: 0,
            dropped_global: 0,
            refused_sends: 0,
            injected_drops: 0,
            injected_duplicates: 0,
            injected_delays: 0,
            completed: false,
        };
        let err = EngineError::RoundLimitExceeded {
            limit: 5,
            report: report.clone(),
        };
        assert!(err.to_string().contains("round limit of 5"));
        assert_eq!(err.into_report(), report);
    }
}
