//! Property-based tests (proptest) for the core invariants of the
//! reproduction: the `NQ_k` bounds of Section 3, the clustering invariants of
//! Lemma 3.5, the global scheduler's capacity guarantees, spanner stretch and
//! SSSP label quality — all over randomly generated graphs and parameters.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use hybrid::core::cluster::{cluster_with_radius, ruling_set};
use hybrid::core::minplus::{self, Assignment, Coeff, RowMatrix};
use hybrid::core::nq::{lemma_3_6_bounds, NqOracle};
use hybrid::core::spanner::{greedy_spanner, measured_stretch};
use hybrid::core::sssp::quantize_distance;
use hybrid::graph::INFINITY;
use hybrid::prelude::*;
use hybrid::sim::{GlobalMessage, GlobalScheduler};

/// A random connected graph drawn from one of the paper's families.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (0u8..5, 10usize..120, any::<u64>()).prop_map(|(kind, n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match kind {
            0 => generators::path(n).unwrap(),
            1 => generators::cycle(n.max(3)).unwrap(),
            2 => {
                let side = ((n as f64).sqrt().ceil() as usize).max(2);
                generators::grid(&[side, side]).unwrap()
            }
            3 => generators::tree_with_n(2, n).unwrap(),
            _ => generators::erdos_renyi(n, (8.0 / n as f64).min(1.0), &mut rng).unwrap(),
        }
    })
}

/// Naive reference for the global scheduler: per-sender `VecDeque` queues
/// (receiver-sorted, matching the scheduler's receiver-grouped delivery
/// order), greedy full-budget scan (skip saturated receivers, never abandon
/// the rest of the round's budget), deferred messages pushed back to the
/// queue front, and the same deterministic sender-order rotation.  Returns
/// the round count and the `(round, message)` delivery trace.
fn reference_schedule(
    params: &ModelParams,
    messages: &[GlobalMessage],
) -> (u64, Vec<(u64, GlobalMessage)>) {
    use std::collections::VecDeque;
    let n = params.n;
    let gamma = params.global_capacity_msgs as u64;
    let mut queues: Vec<VecDeque<u32>> = vec![VecDeque::new(); n];
    for m in messages {
        queues[m.from as usize].push_back(m.to);
    }
    for q in &mut queues {
        q.make_contiguous().sort_unstable();
    }
    let mut active: Vec<u32> = (0..n as u32)
        .filter(|&v| !queues[v as usize].is_empty())
        .collect();
    let mut remaining = messages.len() as u64;
    let mut rounds = 0u64;
    let mut trace = Vec::new();
    while remaining > 0 {
        rounds += 1;
        let mut recv_budget = vec![0u64; n];
        let mut next_active = Vec::new();
        for &sender in &active {
            let q = &mut queues[sender as usize];
            let mut sent = 0u64;
            let mut deferred = Vec::new();
            while sent < gamma {
                let Some(to) = q.pop_front() else { break };
                if recv_budget[to as usize] < gamma {
                    recv_budget[to as usize] += 1;
                    sent += 1;
                    remaining -= 1;
                    trace.push((rounds, GlobalMessage::new(sender, to)));
                } else {
                    deferred.push(to);
                }
            }
            for &to in deferred.iter().rev() {
                q.push_front(to);
            }
            if !q.is_empty() {
                next_active.push(sender);
            }
        }
        if !next_active.is_empty() {
            let shift = rounds as usize % next_active.len();
            next_active.rotate_left(shift);
        }
        active = next_active;
    }
    (rounds, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 3.6: `sqrt(Dk/3n) < NQ_k <= min(D, sqrt(k))`.  The lower bound's
    /// derivation uses Observation 3.2, which requires `NQ_k < D`; when the
    /// workload is so large that `NQ_k` saturates at the diameter only the
    /// upper bound is claimed.
    #[test]
    fn nq_respects_lemma_3_6(graph in arbitrary_graph(), k in 1u64..5000) {
        let oracle = NqOracle::new(&graph);
        let (lower, nq, upper) = lemma_3_6_bounds(&oracle, k);
        if nq < oracle.diameter() {
            prop_assert!((nq as f64) > lower, "lower bound violated: {lower} vs {nq}");
        }
        prop_assert!((nq as f64) <= upper + 1e-9, "upper bound violated: {nq} vs {upper}");
    }

    /// Lemma 3.7: `NQ_{alpha*k} <= 6*sqrt(alpha)*NQ_k`.
    #[test]
    fn nq_growth_respects_lemma_3_7(graph in arbitrary_graph(), k in 1u64..500, alpha in 1u64..20) {
        let oracle = NqOracle::new(&graph);
        let lhs = oracle.nq(alpha * k) as f64;
        let rhs = 6.0 * (alpha as f64).sqrt() * oracle.nq(k) as f64;
        prop_assert!(lhs <= rhs, "NQ_ak={lhs} > 6*sqrt(a)*NQ_k={rhs}");
    }

    /// NQ_k is monotone non-decreasing in the workload k.
    #[test]
    fn nq_monotone_in_k(graph in arbitrary_graph(), k in 1u64..2000) {
        let oracle = NqOracle::new(&graph);
        prop_assert!(oracle.nq(k) <= oracle.nq(k * 2));
    }

    /// The greedy ruling set satisfies both Definition 3.4 properties.
    #[test]
    fn ruling_set_properties(graph in arbitrary_graph(), alpha in 1u64..8) {
        let rulers = ruling_set(&graph, alpha);
        prop_assert!(!rulers.is_empty());
        // Domination.
        let ms = hybrid::graph::traversal::multi_source_bfs(&graph, &rulers);
        prop_assert!(ms.dist.iter().all(|&d| d <= alpha.saturating_sub(1)));
        // Spacing (checked from a sample of rulers to keep the test fast).
        for &a in rulers.iter().take(5) {
            let d = hybrid::graph::traversal::bfs(&graph, a);
            for &b in rulers.iter().filter(|&&b| b != a).take(10) {
                prop_assert!(d.dist[b as usize] >= alpha);
            }
        }
    }

    /// The Lemma 3.5 clustering is always a valid partition with the promised
    /// weak diameter, for any radius parameter.
    #[test]
    fn clustering_is_always_valid(graph in arbitrary_graph(), radius in 1u64..12, k in 1u64..600) {
        let arc = Arc::new(graph);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&arc));
        let clustering = cluster_with_radius(&mut net, radius, k);
        prop_assert!(clustering.validate(&arc).is_ok());
    }

    /// The global scheduler never exceeds the per-round receive cap, delivers
    /// everything, and lands within twice the load lower bound (the greedy
    /// full-budget scan guarantees `≤ 2·LB + 1`; see `scheduler.rs` docs).
    #[test]
    fn scheduler_respects_capacity(
        n in 2usize..40,
        gamma in 1usize..8,
        msgs in prop::collection::vec((any::<u16>(), any::<u16>()), 0..300),
    ) {
        let params = ModelParams::hybrid_with_global_capacity(n, gamma);
        let messages: Vec<GlobalMessage> = msgs
            .iter()
            .map(|&(a, b)| GlobalMessage::new(a as u32 % n as u32, b as u32 % n as u32))
            .collect();
        let report = GlobalScheduler::deliver(&params, &messages);
        prop_assert_eq!(report.messages, messages.len() as u64);
        prop_assert!(report.max_received_in_a_round <= gamma as u64);
        let bound = GlobalScheduler::lower_bound_rounds(&params, &messages);
        prop_assert!(report.rounds >= bound);
        prop_assert!(report.rounds <= 2 * bound + 2, "rounds {} vs bound {}", report.rounds, bound);
    }

    /// The flat-arena scheduler is *exactly* equivalent to a naive per-sender
    /// `VecDeque` reference on skewed random multisets (random hot receivers /
    /// hot senders): same round count, same per-round deliveries in the same
    /// order, and the delivered multiset equals the input multiset.  Also
    /// exercises workspace reuse — one scheduler instance serves every case.
    #[test]
    fn scheduler_matches_naive_reference_exactly(
        n in 2usize..48,
        gamma in 1usize..8,
        seed in any::<u64>(),
        len in 0usize..400,
        skew in 0u8..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let hot = (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32);
        let messages: Vec<GlobalMessage> = (0..len)
            .map(|_| {
                let from = if skew == 1 && rng.gen_range(0..3u8) == 0 {
                    hot.0
                } else {
                    rng.gen_range(0..n) as u32
                };
                let to = if skew == 2 && rng.gen_range(0..2u8) == 0 {
                    hot.1
                } else {
                    rng.gen_range(0..n) as u32
                };
                GlobalMessage::new(from, to)
            })
            .collect();
        let params = ModelParams::hybrid_with_global_capacity(n, gamma);

        let mut sched = GlobalScheduler::new();
        let mut trace = Vec::new();
        let report = sched.deliver_with_trace(&params, &messages, &mut trace);
        let (ref_rounds, ref_trace) = reference_schedule(&params, &messages);

        prop_assert_eq!(report.rounds, ref_rounds);
        prop_assert_eq!(&trace, &ref_trace);
        // Delivered multiset == input multiset (nothing lost or duplicated).
        let mut delivered: Vec<GlobalMessage> = trace.iter().map(|&(_, m)| m).collect();
        delivered.sort_unstable();
        let mut input = messages.clone();
        input.sort_unstable();
        prop_assert_eq!(delivered, input);
        // Per-round receive counts never exceed the cap.
        let mut per_round = std::collections::HashMap::new();
        for &(round, m) in &trace {
            *per_round.entry((round, m.to)).or_insert(0u64) += 1;
        }
        prop_assert!(per_round.values().all(|&c| c <= gamma as u64));
        // Reusing the (now warm) workspace reproduces the identical schedule.
        let mut trace2 = Vec::new();
        let report2 = sched.deliver_with_trace(&params, &messages, &mut trace2);
        prop_assert_eq!(report.rounds, report2.rounds);
        prop_assert_eq!(trace, trace2);
    }

    /// The blocked (min,+) kernel is *exactly* equivalent to the naive triple
    /// loop — including INFINITY saturation — on h-hop row matrices from
    /// random graphs with random anchors, coefficient rows (dense and unit),
    /// offsets and initial rows.  This is the contract that lets the k-SSP /
    /// (k,ℓ)-SP / Theorem 8 data levels share `hybrid::core::minplus`.
    #[test]
    fn minplus_kernel_matches_naive_reference(
        graph in arbitrary_graph(),
        h in 0usize..24,
        seed in any::<u64>(),
        groups in 1usize..6,
        outputs in 1usize..12,
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = graph.n();
        // Skeleton-style rows: h-hop sweeps from random anchors (h may be far
        // below the diameter, so rows carry genuine INFINITY runs).
        let s = rng.gen_range(1..=8usize.min(n));
        let rows: Vec<Vec<u64>> = (0..s)
            .map(|_| {
                let anchor = rng.gen_range(0..n) as u32;
                hybrid::graph::dijkstra::hop_limited_distances(&graph, anchor, h)
            })
            .collect();
        let matrix = RowMatrix::new(rows);
        // Random coefficient rows: dense rows mixing finite entries, huge
        // near-saturating values and INFINITY; occasionally a unit row.
        let coeffs: Vec<Coeff> = (0..groups)
            .map(|_| {
                if rng.gen_range(0..4u8) == 0 {
                    Coeff::Unit(rng.gen_range(0..s))
                } else {
                    Coeff::Dense(
                        (0..s)
                            .map(|_| match rng.gen_range(0..5u8) {
                                0 => INFINITY,
                                1 => u64::MAX - rng.gen_range(0..3u64),
                                _ => rng.gen_range(0..200u64),
                            })
                            .collect(),
                    )
                }
            })
            .collect();
        let assign: Vec<Assignment> = (0..outputs)
            .map(|_| match rng.gen_range(0..5u8) {
                0 => None,
                1 => Some((rng.gen_range(0..groups), INFINITY)),
                _ => Some((rng.gen_range(0..groups), rng.gen_range(0..100u64))),
            })
            .collect();
        let init: Vec<Vec<u64>> = (0..outputs)
            .map(|_| {
                (0..n)
                    .map(|_| match rng.gen_range(0..3u8) {
                        0 => INFINITY,
                        _ => rng.gen_range(0..400u64),
                    })
                    .collect()
            })
            .collect();
        let init_refs: Vec<&[u64]> = init.iter().map(Vec::as_slice).collect();
        let blocked = minplus::compose(&matrix, &coeffs, &assign, &init_refs);
        let naive = minplus::compose_naive(&matrix, &coeffs, &assign, &init_refs);
        prop_assert_eq!(&blocked, &naive);
        // Determinism: a second blocked run reproduces the labels bit for bit.
        prop_assert_eq!(blocked, minplus::compose(&matrix, &coeffs, &assign, &init_refs));
    }

    /// The dispatched (min,+) fold kernels (SIMD when the `simd` feature and
    /// AVX2 are available, scalar otherwise) agree **bit for bit** with the
    /// always-compiled scalar references on random saturating inputs —
    /// INFINITY runs, `u64::MAX − k` near-saturation values and ordinary
    /// finite weights in one accumulator.
    #[test]
    fn minplus_fold_kernels_dispatch_equals_scalar(
        acc0 in prop::collection::vec(
            (0u8..6, 0u64..500).prop_map(|(sel, f)| match sel {
                0 => INFINITY,
                1 => u64::MAX - 1,
                2 => u64::MAX - 1 - (f % 100),
                _ => f,
            }),
            1..300,
        ),
        rows_seed in any::<u64>(),
        base in (0u8..6, 0u64..500).prop_map(|(sel, f)| match sel {
            0 => INFINITY,
            1 => u64::MAX - 1,
            2 => 0,
            _ => f,
        }),
    ) {
        use hybrid::core::minplus::kernel;
        use rand::Rng;
        let n = acc0.len();
        let mut rng = ChaCha8Rng::seed_from_u64(rows_seed);
        let mut row = || -> Vec<u64> {
            (0..n)
                .map(|_| match rng.gen_range(0..6u8) {
                    0 => INFINITY,
                    1 => u64::MAX - rng.gen_range(0..3u64),
                    _ => rng.gen_range(0..500u64),
                })
                .collect()
        };
        let (r0, r1, r2, r3) = (row(), row(), row(), row());
        // Single-row fold: dispatch vs scalar.
        let mut got = acc0.clone();
        kernel::fold_min_sat(&mut got, &r0, base);
        let mut want = acc0.clone();
        kernel::fold_min_sat_scalar(&mut want, &r0, base);
        prop_assert_eq!(&got, &want);
        // Quad fold: dispatch vs scalar, same four rows and bases.
        let bases = [base, 0, u64::MAX - 1, base.wrapping_add(1)];
        let mut got_q = acc0.clone();
        kernel::fold_min_sat_quad(&mut got_q, [&r0, &r1, &r2, &r3], bases);
        let mut want_q = acc0.clone();
        kernel::fold_min_sat_quad_scalar(&mut want_q, [&r0, &r1, &r2, &r3], bases);
        prop_assert_eq!(&got_q, &want_q);
        // The quad fold is also exactly four single folds.
        let mut fold4 = acc0.clone();
        for (r, b) in [(&r0, bases[0]), (&r1, bases[1]), (&r2, bases[2]), (&r3, bases[3])] {
            kernel::fold_min_sat_scalar(&mut fold4, r, b);
        }
        prop_assert_eq!(got_q, fold4);
    }

    /// The Dial bucket-occupancy scan (SIMD-dispatched) finds exactly the
    /// same first non-empty slot as the scalar reference on random occupancy
    /// arrays, including long zero runs and all-zero inputs.
    #[test]
    fn dial_scan_simd_matches_scalar(
        lens in prop::collection::vec(
            (0u8..7, 1u32..50).prop_map(|(sel, v)| if sel < 6 { 0 } else { v }),
            0..300,
        ),
    ) {
        use hybrid::graph::dijkstra::bucket_scan;
        let want = lens.iter().position(|&l| l != 0);
        prop_assert_eq!(bucket_scan::first_nonzero_scalar(&lens), want);
        prop_assert_eq!(bucket_scan::first_nonzero(&lens), want);
        // Every suffix too — the run_dial loop scans from arbitrary offsets.
        for off in [1usize, 3, 7, 8, 9, 31] {
            if off <= lens.len() {
                let tail = &lens[off..];
                prop_assert_eq!(bucket_scan::first_nonzero(tail), tail.iter().position(|&l| l != 0));
            }
        }
    }

    /// Distance quantization keeps labels within [d, (1+eps)d].
    #[test]
    fn quantization_bounds(d in 0u64..1_000_000_000, eps in 0.01f64..2.0) {
        let q = quantize_distance(d, eps);
        prop_assert!(q >= d);
        prop_assert!(q as f64 <= (1.0 + eps) * d as f64 + 1e-6);
    }

    /// The greedy spanner respects its stretch bound on unweighted graphs.
    #[test]
    fn spanner_stretch_bound(graph in arbitrary_graph(), k in 2u64..4) {
        let spanner = greedy_spanner(None, &graph, k);
        let samples: Vec<u32> = (0..graph.n().min(5) as u32).collect();
        let stretch = measured_stretch(&graph, &spanner.graph, &samples);
        prop_assert!(stretch <= (2 * k - 1) as f64 + 1e-9);
    }

    /// Theorem 13 SSSP labels never underestimate and respect the stretch.
    #[test]
    fn sssp_labels_within_stretch(graph in arbitrary_graph(), eps in 0.05f64..1.0, src_sel in any::<u32>()) {
        let arc = Arc::new(graph);
        let source = src_sel % arc.n() as u32;
        let mut net = HybridNetwork::hybrid0(Arc::clone(&arc));
        let out = sssp_approx(&mut net, source, eps);
        let exact = hybrid::graph::dijkstra::dijkstra(&arc, source).dist;
        prop_assert!(out.verify_stretch(&exact).is_ok());
    }

    /// The three single-source oracles are interchangeable: Dial bucket-queue
    /// Dijkstra ≡ binary-heap Dijkstra on every graph, and both ≡ BFS on
    /// unweighted graphs.  This is the contract that lets the workspace pick
    /// the cheapest oracle by weight range.
    #[test]
    fn bucket_queue_equals_heap_equals_bfs(graph in arbitrary_graph(), src_sel in any::<u32>()) {
        let source = src_sel % graph.n() as u32;
        let heap = hybrid::graph::dijkstra::dijkstra_heap(&graph, source);
        let dial = hybrid::graph::dijkstra::dijkstra_dial(&graph, source);
        prop_assert_eq!(&heap.dist, &dial.dist);
        let auto = hybrid::graph::dijkstra::sssp_auto(&graph, source);
        prop_assert_eq!(&heap.dist, &auto);
        if !graph.is_weighted() {
            let bfs = hybrid::graph::traversal::bfs(&graph, source);
            prop_assert_eq!(&heap.dist, &bfs.dist);
        }
    }

    /// Same equivalence on weighted graphs (random weights in [1, 64] keep
    /// the Dial ring small; [1, 1000] forces the heap path of `sssp_auto`).
    #[test]
    fn bucket_queue_equals_heap_weighted(
        graph in arbitrary_graph(),
        max_w in 2u64..1000,
        src_sel in any::<u32>(),
        wseed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(wseed);
        let weighted =
            hybrid::graph::generators::with_random_weights(&graph, max_w, &mut rng).unwrap();
        let source = src_sel % weighted.n() as u32;
        let heap = hybrid::graph::dijkstra::dijkstra_heap(&weighted, source);
        let dial = hybrid::graph::dijkstra::dijkstra_dial(&weighted, source);
        prop_assert_eq!(&heap.dist, &dial.dist);
        prop_assert_eq!(&heap.dist, &hybrid::graph::dijkstra::sssp_auto(&weighted, source));
        // The workspace produces identical distances under reuse.
        let mut ws = hybrid::graph::dijkstra::DijkstraWorkspace::new();
        ws.run(&weighted, source);
        prop_assert_eq!(heap.dist.as_slice(), ws.dist());
        ws.run(&graph, source);
        let unweighted_bfs = hybrid::graph::traversal::bfs(&graph, source);
        prop_assert_eq!(unweighted_bfs.dist.as_slice(), ws.dist());
    }

    /// Hop-limited distances with enough hops recover exact distances, and
    /// the workspace variant matches the allocating one on every prefix.
    #[test]
    fn hop_limited_consistent(graph in arbitrary_graph(), h in 0usize..20, src_sel in any::<u32>()) {
        let source = src_sel % graph.n() as u32;
        let row = hybrid::graph::dijkstra::hop_limited_distances(&graph, source, h);
        let mut ws = hybrid::graph::dijkstra::HopLimitedWorkspace::new();
        let mut row2 = Vec::new();
        hybrid::graph::dijkstra::hop_limited_distances_with(&mut ws, &graph, source, h, &mut row2);
        prop_assert_eq!(&row, &row2);
        let exact = hybrid::graph::dijkstra::dijkstra(&graph, source).dist;
        let full = hybrid::graph::dijkstra::hop_limited_distances(&graph, source, graph.n());
        prop_assert_eq!(&full, &exact);
        for v in 0..graph.n() {
            prop_assert!(row[v] >= exact[v]);
        }
    }

    /// Parallel exact APSP agrees with independent per-source runs.
    #[test]
    fn parallel_apsp_matches_single_source(graph in arbitrary_graph(), src_sel in any::<u32>()) {
        let all = hybrid::graph::dijkstra::apsp_exact(&graph);
        let v = src_sel % graph.n() as u32;
        let single = hybrid::graph::dijkstra::dijkstra_heap(&graph, v);
        prop_assert_eq!(&all[v as usize], &single.dist);
    }

    /// Universal dissemination always delivers every token and is never
    /// slower than the sqrt(k) baseline.
    #[test]
    fn dissemination_complete_and_competitive(graph in arbitrary_graph(), k in 1u64..200) {
        let arc = Arc::new(graph);
        let oracle = NqOracle::new(&arc);
        let holders: Vec<u32> = (0..arc.n() as u32).collect();
        let tokens = hybrid::core::dissemination::place_tokens(&holders, k);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&arc));
        let uni = k_dissemination(&mut net, &oracle, &tokens);
        prop_assert_eq!(uni.tokens.len() as u64, k);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&arc));
        let base = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);
        prop_assert!(uni.rounds <= base.rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Executor determinism (CONCURRENCY.md): the work-stealing pool stitches
    /// chunk results in index order, so a parallel fan-out — per-worker
    /// `map_init` workspaces, steals and adaptive splits included — returns
    /// bit-identical output for every pool width.
    #[test]
    fn parallel_fanouts_are_thread_count_invariant(graph in arbitrary_graph()) {
        let apsp_ref = hybrid::graph::dijkstra::apsp_exact(&graph);
        let ecc_ref = hybrid::graph::properties::eccentricities(&graph);
        for threads in [2usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let (apsp, ecc) = pool.install(|| {
                (
                    hybrid::graph::dijkstra::apsp_exact(&graph),
                    hybrid::graph::properties::eccentricities(&graph),
                )
            });
            prop_assert!(apsp == apsp_ref, "apsp diverged at {} threads", threads);
            prop_assert!(ecc == ecc_ref, "eccentricities diverged at {} threads", threads);
        }
    }

    /// Fault-plane determinism (ARCHITECTURE.md "Fault model"): a
    /// `FaultPlan`'s drop/duplicate/delay/crash decisions are pure hashes of
    /// its seeded key, so replaying the same seed — here through a faulty
    /// ack/retry dissemination on the per-node engine — must produce a
    /// byte-identical run report (rounds, message counts, injected-fault
    /// counters) at every rayon pool width.
    #[test]
    fn fault_plans_are_thread_count_invariant(
        graph in arbitrary_graph(),
        seed in any::<u64>(),
        drop_pct in 0u32..70,
    ) {
        use hybrid::sim::engine::{Executor, NodeProgram};
        use hybrid::sim::programs::AckFloodProgram;
        use hybrid::sim::{FaultPlan, FaultSpec};

        let n = graph.n();
        let spec = FaultSpec::drop_only(f64::from(drop_pct) / 100.0);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let config = hybrid::sim::EngineConfig::new(ModelParams::hybrid(n))
                    .with_fault_plan(FaultPlan::new(spec, seed, n));
                let mut exec = Executor::with_config(&graph, config, |v| {
                    AckFloodProgram::new(if v == 0 { vec![7] } else { vec![] }, 1, 2)
                });
                // Completion is not guaranteed for every sampled plan; only
                // thread-count invariance of the bounded window is asserted.
                format!("{:?}", exec.run_capped(20_000, |ps| ps.iter().all(|p| p.done())))
            })
        };
        let reference = run(1);
        for threads in [4usize, 8] {
            let got = run(threads);
            prop_assert!(got == reference, "fault trace diverged at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scenario-matrix generators build connected graphs of exactly the
    /// advertised size, deterministically per seed.  (Hub dominance is *not*
    /// asserted here: at small `n` with a high tail exponent the weight
    /// sequence is nearly flat and sampling noise can out-degree node 0 —
    /// the heavy-tail shape is pinned by the fixed-parameter unit tests in
    /// `hybrid-graph::generators` instead.)
    #[test]
    fn chung_lu_exact_size_connected_deterministic(
        n in 20usize..200,
        exponent in 2.1f64..3.5,
        avg in 3.0f64..8.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::chung_lu(n, exponent, avg, &mut rng).unwrap();
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.m() >= n - 1, "connected graphs have >= n-1 edges");
        let (_, c) = hybrid::graph::traversal::connected_components(&g);
        prop_assert_eq!(c, 1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let g2 = generators::chung_lu(n, exponent, avg, &mut rng2).unwrap();
        prop_assert_eq!(g.edges(), g2.edges());
    }

    /// Ring-of-cliques: exact node and edge counts from the parameters.
    #[test]
    fn ring_of_cliques_exact_shape(
        cliques in 3usize..12,
        size in 2usize..9,
        bridges in 1usize..4,
    ) {
        let bridges = bridges.min(size);
        let g = generators::ring_of_cliques(cliques, size, bridges).unwrap();
        prop_assert_eq!(g.n(), cliques * size);
        prop_assert_eq!(g.m(), cliques * (size * (size - 1) / 2) + cliques * bridges);
        let (_, c) = hybrid::graph::traversal::connected_components(&g);
        prop_assert_eq!(c, 1);
    }

    /// Barbell: exact node and edge counts, and the bridge path really is the
    /// cut — the diameter grows linearly with the path length.
    #[test]
    fn barbell_exact_shape(clique in 2usize..12, path in 0usize..20) {
        let g = generators::barbell(clique, path).unwrap();
        prop_assert_eq!(g.n(), 2 * clique + path);
        prop_assert_eq!(g.m(), clique * (clique - 1) + path + 1);
        let (_, c) = hybrid::graph::traversal::connected_components(&g);
        prop_assert_eq!(c, 1);
        let d = hybrid::graph::properties::diameter(&g);
        let expected = if clique > 1 { path as u64 + 3 } else { path as u64 + 1 };
        prop_assert_eq!(d, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scale tier (ARCHITECTURE.md "Scale tier"): on graphs small enough to
    /// afford the exact oracle (n ≤ 512), every sampled `NQ_k` witness agrees
    /// with the exact one within its recorded semantics — per-sampled-node
    /// values are *exact*, the estimate is a guaranteed lower bound on the
    /// population maximum, the recorded confidence is `1 − (1−q)^s`, and a
    /// full sample recovers the exact maximum.
    #[test]
    fn sampled_nq_agrees_with_exact_within_recorded_semantics(
        graph in arbitrary_graph(),
        k_sel in 1u64..5000,
        sample in 1usize..64,
        seed in any::<u64>(),
    ) {
        use hybrid::core::nq::{NqSource, SampledNqOracle};
        let n = graph.n() as u64;
        let k = k_sel.clamp(1, n);
        let exact = NqOracle::new(&graph);
        let sampled = SampledNqOracle::new(&graph, sample, n, 0.02, seed);
        let est = sampled.nq_estimate(k);
        prop_assert!(est.estimate <= exact.nq(k), "sample max exceeded the exact max");
        prop_assert!((est.confidence - (1.0 - 0.98f64.powi(est.sample_size as i32))).abs() < 1e-12);
        for v in sampled.sampled_nodes().collect::<Vec<_>>() {
            prop_assert!(sampled.nq_of(v, k) == exact.nq_of(v, k), "node {} diverged", v);
        }
        let full = SampledNqOracle::new(&graph, graph.n(), n, 0.02, seed);
        prop_assert_eq!(NqSource::nq(&full, k), exact.nq(k));
    }

    /// Scale tier: exact `DistanceRows` over a sampled source set equal the
    /// corresponding rows of the full exact distance matrix, for any source
    /// choice and thread count — the representation changes, the results do
    /// not.
    #[test]
    fn distance_rows_match_matrix_rows(graph in arbitrary_graph(), picks in prop::collection::vec(any::<u32>(), 1..6)) {
        use hybrid::core::rows::DistanceRows;
        let n = graph.n() as u32;
        let mut sources: Vec<u32> = picks.iter().map(|&p| p % n).collect();
        sources.sort_unstable();
        sources.dedup();
        let rows = DistanceRows::compute(&graph, &sources);
        let full = hybrid::graph::dijkstra::apsp_exact(&graph);
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(rows.row(i), &full[s as usize][..]);
        }
        prop_assert_eq!(rows.memory_bytes(), (sources.len() * graph.n() * 8 + sources.len() * 4) as u64);
    }

    /// Serving layer: on random weighted graphs, random query batches answer
    /// exactly what the per-query entry point answers, every answer respects
    /// the documented stretch against exact Dijkstra, and every witness path
    /// telescopes to its reported distance.
    #[test]
    fn oracle_batches_agree_with_single_queries(
        graph in arbitrary_graph(),
        max_w in 1u64..40,
        wseed in any::<u64>(),
        qseed in any::<u64>(),
    ) {
        use hybrid::core::oracle::{DistanceOracle, OracleConfig, ORACLE_STRETCH};
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(wseed);
        let weighted =
            hybrid::graph::generators::with_random_weights(&graph, max_w, &mut rng).unwrap();
        let n = weighted.n() as u32;
        let oracle = DistanceOracle::build(
            &weighted,
            OracleConfig { query_chunk: 13, ..OracleConfig::default() },
        ).unwrap();
        let mut qrng = ChaCha8Rng::seed_from_u64(qseed);
        let queries: Vec<(u32, u32)> = (0..64)
            .map(|_| (qrng.gen_range(0..n), qrng.gen_range(0..n)))
            .collect();
        let batch = oracle.query_batch(&queries);
        let paths = oracle.query_paths_batch(&queries);
        let exact = hybrid::graph::dijkstra::apsp_exact(&weighted);
        for (i, &(u, v)) in queries.iter().enumerate() {
            prop_assert_eq!(batch[i], oracle.query(u, v));
            prop_assert_eq!(paths.dist(i), batch[i]);
            let e = exact[u as usize][v as usize];
            prop_assert!(batch[i] >= e, "({}, {}) underestimated", u, v);
            prop_assert!(batch[i] as f64 <= ORACLE_STRETCH * e as f64 + 1e-9);
            let path = paths.path(i);
            prop_assert_eq!(path.first(), Some(&u));
            prop_assert_eq!(path.last(), Some(&v));
            let mut total = 0u64;
            for pair in path.windows(2) {
                let arc = weighted.arcs(pair[0]).iter().find(|a| a.to == pair[1]);
                prop_assert!(arc.is_some(), "({}, {}) non-edge step", pair[0], pair[1]);
                total += arc.unwrap().weight;
            }
            prop_assert_eq!(total, batch[i]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming generators (deterministic families): bit-identical to the
    /// legacy sequential generators at overlapping sizes, at every pool
    /// width — the chunked emission is a pure re-chunking of the same edge
    /// stream.
    #[test]
    fn streaming_deterministic_families_match_legacy_at_any_width(n in 10usize..400) {
        use hybrid::graph::streaming;
        let side = ((n as f64).sqrt().ceil() as usize).max(2);
        let legacy: Vec<Graph> = vec![
            generators::path(n).unwrap(),
            generators::cycle(n.max(3)).unwrap(),
            generators::grid(&[side, side]).unwrap(),
            generators::tree_with_n(2, n).unwrap(),
            generators::ring_of_cliques(n.div_ceil(8).max(3), 8, 2).unwrap(),
            generators::barbell((3 * n / 8).max(2), n.saturating_sub(2 * (3 * n / 8).max(2))).unwrap(),
        ];
        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let streamed: Vec<Graph> = pool.install(|| {
                vec![
                    streaming::path(n).unwrap(),
                    streaming::cycle(n.max(3)).unwrap(),
                    streaming::grid(&[side, side]).unwrap(),
                    streaming::tree_with_n(2, n).unwrap(),
                    streaming::ring_of_cliques(n.div_ceil(8).max(3), 8, 2).unwrap(),
                    streaming::barbell((3 * n / 8).max(2), n.saturating_sub(2 * (3 * n / 8).max(2))).unwrap(),
                ]
            });
            for (l, s) in legacy.iter().zip(&streamed) {
                prop_assert!(l.edges() == s.edges(), "diverged at {} threads", threads);
            }
        }
    }

    /// Differential conformance (shootout registry): on a random
    /// `(family, seed, λ, γ)` instance, every registered dissemination
    /// contender delivers the *identical* token set — and the whole registry
    /// is bit-identical across rayon pool widths `{1, 4}`.
    #[test]
    fn registered_dissemination_impls_agree_on_random_instances(
        graph in arbitrary_graph(),
        k in 1u64..150,
        gamma in 1usize..65,
        lambda_sel in 0u64..5,
        seed in any::<u64>(),
    ) {
        use hybrid::core::{dissemination_registry, nq::NqOracle};
        use hybrid::sim::LocalBandwidth;
        use rand::Rng;

        let arc = Arc::new(graph);
        let params = ModelParams {
            local: match lambda_sel {
                0 => LocalBandwidth::Unlimited,
                s => LocalBandwidth::BoundedBits(64 * s),
            },
            global_capacity_msgs: gamma,
            ..ModelParams::hybrid(arc.n())
        };
        let oracle = NqOracle::new(&arc);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut holders: Vec<u32> =
            (0..arc.n() as u32).filter(|_| rng.gen_bool(0.5)).collect();
        if holders.is_empty() {
            holders.push(rng.gen_range(0..arc.n()) as u32);
        }
        let tokens = hybrid::core::dissemination::place_tokens(&holders, k);

        let run_registry = || -> Vec<(&'static str, u64, Vec<u64>)> {
            dissemination_registry()
                .iter()
                .map(|algo| {
                    let mut net = HybridNetwork::new(Arc::clone(&arc), params);
                    let out = algo.run(&mut net, &oracle, &tokens);
                    (algo.name(), out.rounds, out.tokens)
                })
                .collect()
        };
        let reference = run_registry();
        for (name, _, tokens_out) in &reference {
            prop_assert!(tokens_out.len() as u64 == k, "{} lost tokens", name);
            prop_assert!(
                tokens_out == &reference[0].2,
                "{} and {} disagree on the delivered token set",
                name,
                reference[0].0
            );
        }
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let got = pool.install(run_registry);
            prop_assert!(got == reference, "registry diverged at {} threads", threads);
        }
    }

    /// Differential conformance (shootout registry): on a random weighted
    /// `(family, seed, λ, γ)` instance, every registered shortest-paths
    /// contender stays within its stated stretch of the exact Dijkstra
    /// oracle, never underestimates, and reproduces bit-identically across
    /// rayon pool widths `{1, 4}`.
    #[test]
    fn registered_sssp_impls_meet_stretch_on_random_instances(
        graph in arbitrary_graph(),
        max_w in 2u64..64,
        gamma in 1usize..65,
        lambda_sel in 0u64..5,
        eps_sel in 1u32..8,
        seed in any::<u64>(),
    ) {
        use hybrid::core::sssp_registry;
        use hybrid::sim::LocalBandwidth;
        use rand::Rng;

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weighted = Arc::new(
            hybrid::graph::generators::with_random_weights(&graph, max_w, &mut rng).unwrap(),
        );
        let n = weighted.n();
        let params = ModelParams {
            local: match lambda_sel {
                0 => LocalBandwidth::Unlimited,
                s => LocalBandwidth::BoundedBits(64 * s),
            },
            global_capacity_msgs: gamma,
            ..ModelParams::hybrid(n)
        };
        let epsilon = f64::from(eps_sel) / 8.0;
        let k = rng.gen_range(1..=4usize.min(n));
        let mut sources: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n) as u32).collect();
        sources.sort_unstable();
        sources.dedup();

        let run_registry = || -> Vec<(&'static str, u64, Vec<Vec<u64>>)> {
            sssp_registry()
                .iter()
                .map(|algo| {
                    let mut net = HybridNetwork::new(Arc::clone(&weighted), params);
                    let out = algo.run(&mut net, &sources, epsilon, seed);
                    (algo.name(), out.rounds, out.dist)
                })
                .collect()
        };
        let reference = run_registry();
        for (algo, (name, _, dist)) in sssp_registry().iter().zip(&reference) {
            let stated = algo.stated_stretch(epsilon);
            for (si, &s) in sources.iter().enumerate() {
                let exact = hybrid::graph::dijkstra::dijkstra(&weighted, s).dist;
                for v in 0..n {
                    prop_assert!(
                        dist[si][v] >= exact[v],
                        "{} underestimated d({}, {})",
                        name, s, v
                    );
                    prop_assert!(
                        dist[si][v] as f64 <= stated * exact[v] as f64 + 1e-6,
                        "{} broke its stated stretch {} at d({}, {}): {} vs exact {}",
                        name, stated, s, v, dist[si][v], exact[v]
                    );
                }
            }
        }
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let got = pool.install(run_registry);
            prop_assert!(got == reference, "registry diverged at {} threads", threads);
        }
    }

    /// Streaming generators (random families): the canonical per-chunk
    /// streams are seed-deterministic and pool-width invariant — the edge
    /// list is a pure function of `(family, n, seed)`, never of the worker
    /// count.
    #[test]
    fn streaming_random_families_are_pool_width_invariant(
        n in 64usize..600,
        seed in any::<u64>(),
    ) {
        use hybrid::graph::streaming;
        let build = || -> Vec<Graph> {
            vec![
                streaming::erdos_renyi(n, (6.0 / n as f64).min(1.0), seed).unwrap(),
                streaming::random_geometric(n, (8.0 / n as f64).sqrt().min(0.9), seed).unwrap(),
                streaming::chung_lu(n, 2.5, 6.0, seed).unwrap(),
            ]
        };
        let reference = build();
        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let got = pool.install(build);
            for (r, g) in reference.iter().zip(&got) {
                prop_assert!(r.edges() == g.edges(), "diverged at {} threads", threads);
            }
        }
    }
}
