//! Cross-crate integration tests for the shortest-paths stack
//! (Tables 2–4 and Figure 1): every approximation algorithm is validated
//! against exact Dijkstra ground truth, and the round counts must show the
//! paper's qualitative shape (universal ≤ existential, SSSP flat in `n`,
//! k-SSP growing like `√k`).

use std::sync::Arc;

use hybrid::core::apsp;
use hybrid::core::klsp::{klsp, KlspScenario};
use hybrid::core::kssp::baseline_chlp21_rounds;
use hybrid::core::prob::{sample_distinct, sample_with_probability};
use hybrid::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn theorem6_apsp_stretch_and_shape_across_families() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let cases: Vec<(&str, Graph)> = vec![
        ("grid", generators::grid(&[10, 10]).unwrap()),
        ("cycle", generators::cycle(90).unwrap()),
        ("tree", generators::tree_balanced(3, 4).unwrap()),
        ("er", generators::erdos_renyi(100, 0.06, &mut rng).unwrap()),
    ];
    for (name, graph) in cases {
        let graph = Arc::new(graph);
        let oracle = NqOracle::new(&graph);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let uni = apsp_unweighted(&mut net, &oracle, 0.5);
        let worst = uni
            .verify_stretch(&graph)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(worst <= 1.5, "{name}: stretch {worst}");

        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let base = apsp::baseline_unweighted_apsp_sqrt_n(&mut net, &oracle, 0.5);
        assert!(
            uni.rounds <= base.rounds,
            "{name}: universal {} slower than structured baseline {}",
            uni.rounds,
            base.rounds
        );
    }
}

#[test]
fn weighted_apsp_algorithms_respect_their_stretch() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graph = Arc::new(generators::weighted_erdos_renyi(90, 0.07, 20, &mut rng).unwrap());
    let oracle = NqOracle::new(&graph);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let spanner_based = apsp_weighted_spanner(&mut net, &oracle, 0.5);
    let worst = spanner_based.verify_stretch(&graph).expect("Theorem 7");
    assert!(worst <= spanner_based.stretch);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let skeleton_based = apsp::apsp_weighted_skeleton(&mut net, &oracle, 1, &mut rng);
    let worst = skeleton_based.verify_stretch(&graph).expect("Theorem 8");
    assert!(worst <= 3.0);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let exact = apsp::apsp_sparse_exact(&mut net, &oracle);
    assert!((exact.verify_stretch(&graph).unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn theorem13_sssp_rounds_flat_in_n_baselines_grow() {
    // Table 4's headline: prior algorithms grow polynomially with n, the new
    // SSSP does not.
    let mut ours = Vec::new();
    let mut baseline = Vec::new();
    for side in [8usize, 16, 32, 64] {
        let graph = Arc::new(generators::grid(&[side, side]).unwrap());
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let out = sssp_approx(&mut net, 0, 0.5);
        let exact = hybrid::graph::dijkstra::dijkstra(&graph, 0).dist;
        out.verify_stretch(&exact).unwrap();
        ours.push(out.rounds);

        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        baseline.push(baseline_sssp(&mut net, 0, SsspBaseline::Ks20SqrtN).rounds);
    }
    // Baseline grows by ~8x from n=64 to n=4096; ours by at most 2x (polylog).
    assert!(baseline.last().unwrap() > &(baseline[0] * 5));
    assert!(ours.last().unwrap() <= &(ours[0] * 3));
    // And at the largest size the new algorithm is much faster.
    assert!(ours.last().unwrap() * 4 < *baseline.last().unwrap());
}

#[test]
fn theorem14_kssp_tracks_sqrt_k_and_beats_prior_for_small_k() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graph = Arc::new(generators::erdos_renyi(600, 6.0 / 600.0, &mut rng).unwrap());
    let mut rounds = Vec::new();
    for &k in &[16usize, 64, 256] {
        let sources = sample_distinct(graph.n(), k, &mut rng);
        let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
        let out = kssp(
            &mut net,
            &sources,
            1.0,
            KsspVariant::RandomSources,
            &mut rng,
        );
        out.verify_stretch(&graph).unwrap();
        rounds.push(out.rounds);
    }
    // Growth between k=16 and k=256 should be roughly sqrt(16) = 4x, certainly
    // far below the 16x of a linear-in-k schedule.
    assert!(rounds[2] > rounds[0], "rounds must grow with k");
    assert!(
        rounds[2] < rounds[0] * 10,
        "growth {:?} looks linear in k rather than sqrt",
        rounds
    );
    // Figure 1 shape: the prior bound Õ(n^{1/3} + √k) is flat in k on its left
    // side (dominated by the n^{1/3} term), so the new algorithm's rounds
    // relative to it must shrink as k decreases — the crossover moves in the
    // right direction even though absolute constants differ at this scale.
    let ratio_small = rounds[0] as f64 / baseline_chlp21_rounds(graph.n(), 16) as f64;
    let ratio_large = rounds[2] as f64 / baseline_chlp21_rounds(graph.n(), 256) as f64;
    assert!(
        ratio_small < ratio_large,
        "advantage does not grow towards small k: {ratio_small:.2} vs {ratio_large:.2}"
    );
}

#[test]
fn theorem5_klsp_end_to_end_on_weighted_geometric_graph() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let base = generators::random_geometric(250, 0.12, &mut rng).unwrap();
    let graph = Arc::new(generators::with_random_weights(&base, 10, &mut rng).unwrap());
    let oracle = NqOracle::new(&graph);
    let sources = sample_distinct(graph.n(), 30, &mut rng);
    let nq = oracle.nq(30);
    let mut targets = sample_with_probability(graph.n(), nq as f64 / graph.n() as f64, &mut rng);
    if targets.is_empty() {
        targets.push(1);
    }
    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let out = klsp(
        &mut net,
        &oracle,
        &sources,
        &targets,
        0.2,
        KlspScenario::ArbitrarySourcesRandomTargets,
        &mut rng,
    );
    let worst = out.verify_stretch(&graph).expect("Theorem 5 stretch");
    assert!(worst <= 1.2);
    assert_eq!(out.dist.len(), targets.len());
    assert!(out.dist.iter().all(|row| row.len() == sources.len()));
}

#[test]
fn cut_approximation_pipeline_preserves_random_cuts() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let graph = Arc::new(generators::grid(&[9, 9]).unwrap());
    let oracle = NqOracle::new(&graph);
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let out = hybrid::core::cuts::approximate_all_cuts(&mut net, &oracle, 0.5, &mut rng);
    let err = hybrid::core::cuts::measured_cut_error(&graph, &out.sparsifier.graph, 20, &mut rng);
    assert!(err <= 1.0, "cut error {err} too large");
    assert!(out.rounds > 0);
}
