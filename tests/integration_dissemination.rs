//! Cross-crate integration tests for the information-dissemination stack
//! (Table 1 algorithms): the phase-engine algorithms of `hybrid-core`, the
//! per-node message-passing engine of `hybrid-sim`, and the lower-bound
//! witnesses must all tell a consistent story.

use std::sync::Arc;

use hybrid::core::dissemination::{place_tokens, RadiusPolicy};
use hybrid::core::lower_bounds::dissemination_lower_bound;
use hybrid::core::routing::baseline_sqrt_k_routing;
use hybrid::prelude::*;
use hybrid::sim::engine::{Executor, NodeProgram};
use hybrid::sim::programs::TokenGossipProgram;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        ("path", generators::path(n).unwrap()),
        ("cycle", generators::cycle(n).unwrap()),
        (
            "grid",
            generators::grid(&[(n as f64).sqrt() as usize, (n as f64).sqrt() as usize]).unwrap(),
        ),
        ("tree", generators::tree_with_n(2, n).unwrap()),
        (
            "er",
            generators::erdos_renyi(n, 6.0 / n as f64, &mut rng).unwrap(),
        ),
    ]
}

#[test]
fn universal_dissemination_beats_or_ties_baseline_on_every_family() {
    for (name, graph) in families(256, 1) {
        let graph = Arc::new(graph);
        let oracle = NqOracle::new(&graph);
        let tokens = place_tokens(&(0..graph.n() as u32).collect::<Vec<_>>(), 128);

        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let uni = k_dissemination(&mut net, &oracle, &tokens);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let base = baseline_sqrt_k_dissemination(&mut net, &oracle, &tokens);

        assert_eq!(uni.tokens, base.tokens, "{name}: same delivered set");
        assert_eq!(uni.tokens.len(), 128, "{name}: all tokens delivered");
        assert!(
            uni.rounds <= base.rounds,
            "{name}: universal {} > baseline {}",
            uni.rounds,
            base.rounds
        );
    }
}

#[test]
fn measured_rounds_sit_between_lower_bound_and_polylog_nq() {
    for (name, graph) in families(400, 2) {
        let graph = Arc::new(graph);
        let oracle = NqOracle::new(&graph);
        let k = 200u64;
        let tokens = place_tokens(&(0..graph.n() as u32).collect::<Vec<_>>(), k);
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let out = k_dissemination(&mut net, &oracle, &tokens);
        let bound = dissemination_lower_bound(&oracle, net.params(), k, 0.99);
        let log_n = net.log_n();

        assert!(
            (out.rounds as f64) >= bound.rounds,
            "{name}: upper bound below the lower bound?!"
        );
        assert!(
            out.rounds <= out.nq * 60 * log_n * log_n,
            "{name}: rounds {} not Õ(NQ_k = {})",
            out.rounds,
            out.nq
        );
    }
}

#[test]
fn dissemination_independent_of_initial_token_distribution() {
    // Theorem 1 makes no assumption on where the k messages start: the cost
    // is a property of the topology, not of the placement.
    let graph = Arc::new(generators::grid(&[16, 16]).unwrap());
    let oracle = NqOracle::new(&graph);
    let k = 96u64;

    let concentrated = place_tokens(&[0], k);
    let spread = place_tokens(&(0..graph.n() as u32).collect::<Vec<_>>(), k);

    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let a = k_dissemination(&mut net, &oracle, &concentrated);
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let b = k_dissemination(&mut net, &oracle, &spread);

    assert_eq!(a.tokens, b.tokens);
    let ratio = a.rounds.max(b.rounds) as f64 / a.rounds.min(b.rounds).max(1) as f64;
    assert!(ratio < 2.0, "placement changed the cost by {ratio}x");
}

#[test]
fn fixed_radius_ablation_monotone_in_radius_quality() {
    // Ablation of the design choice DESIGN.md calls out: the radius is the
    // only difference between the universal and existential algorithms, and
    // using a radius larger than NQ_k only makes things slower.
    let graph = Arc::new(generators::grid(&[20, 20]).unwrap());
    let oracle = NqOracle::new(&graph);
    let k = 200u64;
    let tokens = place_tokens(&(0..graph.n() as u32).collect::<Vec<_>>(), k);
    let nq = oracle.nq(k);

    let mut rounds = Vec::new();
    for radius in [nq, 2 * nq, 4 * nq] {
        let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
        let out = hybrid::core::dissemination::disseminate_with_radius(
            &mut net,
            &oracle,
            &tokens,
            radius,
            RadiusPolicy::Fixed(radius),
        );
        assert_eq!(out.tokens.len(), k as usize);
        rounds.push(out.rounds);
    }
    assert!(
        rounds[0] <= rounds[1] && rounds[1] <= rounds[2],
        "rounds {rounds:?} not monotone"
    );
}

#[test]
fn aggregation_matches_direct_computation_on_er_graph() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let graph = Arc::new(generators::erdos_renyi(200, 0.04, &mut rng).unwrap());
    let oracle = NqOracle::new(&graph);
    let k = 12usize;
    let values: Vec<Vec<u64>> = (0..graph.n() as u64)
        .map(|v| (0..k as u64).map(|i| (v * 31 + i * 17) % 997).collect())
        .collect();
    let mut net = HybridNetwork::hybrid0(Arc::clone(&graph));
    let out = k_aggregation(&mut net, &oracle, &values, |a, b| a.min(b));
    for i in 0..k {
        let expected = values.iter().map(|v| v[i]).min().unwrap();
        assert_eq!(out.results[i], expected, "component {i}");
    }
}

#[test]
fn phase_engine_and_message_passing_engine_agree_on_delivery() {
    // Cross-validation between the two simulation styles: the unstructured
    // token-gossip program (true per-node execution on the message-passing
    // engine) and the structured Theorem 1 broadcast (phase engine) must both
    // deliver every token to every node, and the gossip run must never exceed
    // the per-node global capacity.
    let graph = generators::grid(&[12, 12]).unwrap();
    let k = 24usize;
    let params = ModelParams::hybrid(graph.n());
    let mut exec = Executor::new(&graph, params, |v| {
        let initial: Vec<u64> = if (v as usize) < k {
            vec![v as u64]
        } else {
            vec![]
        };
        TokenGossipProgram::new(v, graph.n(), initial, k, 99)
    });
    let gossip = exec.run_capped(5_000, |ps| ps.iter().all(|p| p.done()));
    assert!(gossip.completed, "gossip never finished");
    assert_eq!(
        gossip.refused_sends, 0,
        "gossip exceeded its own send budget"
    );
    for p in exec.programs() {
        assert_eq!(p.known.len(), k);
    }

    let arc = Arc::new(graph);
    let oracle = NqOracle::new(&arc);
    let tokens = place_tokens(&(0..k as u32).collect::<Vec<_>>(), k as u64);
    let mut net = HybridNetwork::hybrid(Arc::clone(&arc));
    let structured = k_dissemination(&mut net, &oracle, &tokens);
    assert_eq!(structured.tokens.len(), k);
    assert_eq!(
        structured.tokens,
        (0..k as u64).collect::<Vec<_>>(),
        "both styles deliver the same token set"
    );
}

#[test]
fn routing_baseline_and_universal_agree_on_delivery() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let graph = Arc::new(generators::grid(&[14, 14]).unwrap());
    let oracle = NqOracle::new(&graph);
    let sources: Vec<u32> = (0..40).collect();
    let targets: Vec<u32> = vec![50, 120, 190];

    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let uni = kl_routing(
        &mut net,
        &oracle,
        &sources,
        &targets,
        RoutingScenario::ArbitrarySourcesRandomTargets,
        &mut rng,
    );
    let mut net = HybridNetwork::hybrid(Arc::clone(&graph));
    let base = baseline_sqrt_k_routing(&mut net, &oracle, &sources, &targets, &mut rng);

    assert!(uni.is_complete(&sources, &targets));
    assert!(base.is_complete(&sources, &targets));
    assert!(uni.rounds <= base.rounds);
}
