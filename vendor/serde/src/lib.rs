//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free replacement that covers exactly the surface the
//! repository uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus JSON emission *and parsing* through the sibling `serde_json`
//! stand-in.
//!
//! Design: instead of serde's visitor architecture, [`Serialize`] converts a
//! value into an owned JSON [`Value`] tree which `serde_json` renders, and
//! [`Deserialize`] reconstructs a value from such a tree (which `serde_json`
//! parses out of text).  That is entirely sufficient for the result files the
//! benchmarks write and for the framed envelopes the networked node runtime
//! exchanges, and it keeps the stand-in small.
//!
//! The derive macro emits serde's default *externally tagged* representation
//! for enums and name-keyed objects for structs, so the JSON stays stable if
//! the workspace ever moves to real serde.  Deserialization looks fields up
//! **by name** (not position), tolerates extra keys, and reports missing or
//! mistyped fields through [`DeError`].

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short tag naming the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number `>= 0`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) => u64::try_from(x).ok(),
            Value::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::UInt(x) => i64::try_from(x).ok(),
            Value::Float(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is any JSON number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(x) => Some(x as f64),
            Value::Int(x) => Some(x as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Conversion of a Rust value into a JSON [`Value`] tree.
///
/// This trait plays the role of `serde::Serialize`; the derive macro emits a
/// field-by-field implementation for structs and an externally-tagged one for
/// enums (matching serde's default representation).
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

/// Error produced when a JSON [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor for "expected X, got Y" mismatches.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Reconstruction of a Rust value from a JSON [`Value`] tree.
///
/// This trait plays the role of `serde::Deserialize`.  The lifetime parameter
/// mirrors real serde's signature (all stand-in deserialization is owned, so
/// it is unused); bound owned deserialization through [`DeserializeOwned`].
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the JSON tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// A value deserializable without borrowing from the input — the stand-in's
/// counterpart of `serde::de::DeserializeOwned` (every stand-in impl is).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let x = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(x).map_err(|_| {
                    DeError(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let x = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(x).map_err(|_| {
                    DeError(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", value)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", value)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(DeError::expected("array of length 2", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::deserialize(a)?, B::deserialize(b)?, C::deserialize(c)?)),
            _ => Err(DeError::expected("array of length 3", value)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.to_value()), Ok(7));
        assert_eq!(u64::deserialize(&Value::UInt(u64::MAX)), Ok(u64::MAX));
        assert_eq!(i64::deserialize(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::deserialize(&true.to_value()), Ok(true));
        assert_eq!(f64::deserialize(&Value::Float(1.5)), Ok(1.5));
        assert_eq!(f64::deserialize(&Value::UInt(3)), Ok(3.0));
        assert_eq!(String::deserialize(&"x".to_value()), Ok("x".to_string()));
        assert_eq!(<()>::deserialize(&Value::Null), Ok(()));
        assert_eq!(
            Vec::<u64>::deserialize(&vec![1u64, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null), Ok(None::<u32>));
        assert_eq!(Option::<u32>::deserialize(&Value::UInt(5)), Ok(Some(5)));
        assert_eq!(
            <(u32, String)>::deserialize(&(7u32, "y").to_value()),
            Ok((7, "y".to_string()))
        );
        assert_eq!(
            <(u8, u8, u8)>::deserialize(&(1u8, 2u8, 3u8).to_value()),
            Ok((1, 2, 3))
        );
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        assert!(u32::deserialize(&Value::Str("7".into())).is_err());
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(u64::deserialize(&Value::Int(-1)).is_err());
        assert!(bool::deserialize(&Value::UInt(1)).is_err());
        assert!(String::deserialize(&Value::Null).is_err());
        assert!(Vec::<u64>::deserialize(&Value::UInt(1)).is_err());
        assert!(<(u8, u8)>::deserialize(&vec![1u8].to_value()).is_err());
        let err = u32::deserialize(&Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![("k".into(), Value::UInt(1))]);
        assert_eq!(obj.get("k"), Some(&Value::UInt(1)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::Int(3).as_u64(), Some(3));
        assert_eq!(Value::Int(-3).as_u64(), None);
        assert_eq!(Value::Float(2.0).as_i64(), Some(2));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::deserialize(&obj), Ok(obj.clone()));
    }
}
