//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free replacement that covers exactly the surface the
//! repository uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus JSON emission through the sibling `serde_json` stand-in.
//!
//! Design: instead of serde's visitor architecture, [`Serialize`] converts a
//! value into an owned JSON [`Value`] tree which `serde_json` renders.  That
//! is entirely sufficient for the result files the benchmarks write, and it
//! keeps the stand-in ~200 lines.  [`Deserialize`] is a marker trait: nothing
//! in the repository parses JSON back (results are read by Python/jq in CI).

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Conversion of a Rust value into a JSON [`Value`] tree.
///
/// This trait plays the role of `serde::Serialize`; the derive macro emits a
/// field-by-field implementation for structs and an externally-tagged one for
/// enums (matching serde's default representation).
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for `serde::Deserialize`.
///
/// No code in this repository deserializes, so the derive emits an empty
/// implementation purely to keep `#[derive(Deserialize)]` compiling.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }
}
