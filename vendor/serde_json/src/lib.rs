//! Offline stand-in for `serde_json`: renders the in-tree [`serde::Value`]
//! model as JSON text.  Only the serialization entry points the repository
//! uses are provided (`to_string`, `to_string_pretty`).

use serde::{Serialize, Value};

/// Error type kept for API compatibility; rendering never fails.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // force a decimal point so the value reads back as a float.
                let s = format!("{x}");
                let is_integral = !s.contains('.') && !s.contains('e') && !s.contains('E');
                out.push_str(&s);
                if is_integral {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"a\":1,\"b\":[true,null],\"c\":1.5,\"d\":2.0}"
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }
}
