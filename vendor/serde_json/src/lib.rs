//! Offline stand-in for `serde_json`: renders the in-tree [`serde::Value`]
//! model as JSON text and parses JSON text back into it.  The entry points
//! the repository uses are provided: `to_string` / `to_string_pretty` for
//! serialization, and [`from_str`] / [`value_from_str`] for the framed
//! envelopes of the networked node runtime.
//!
//! The parser is a strict recursive-descent reader over the full JSON
//! grammar (nested arrays/objects, escape sequences including `\uXXXX`
//! surrogate pairs, signed/unsigned/float numbers).  Integral numbers parse
//! to [`serde::Value::UInt`]/[`serde::Value::Int`], so a serialize→parse
//! round trip reproduces the original tree bit-for-bit for the integer-only
//! payloads the engine exchanges (floats rendered with a forced decimal
//! point round-trip as floats).

use serde::{DeserializeOwned, Serialize, Value};

/// Error raised by JSON parsing (and kept in serialization signatures for
/// API compatibility; rendering itself never fails).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stand-in error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value via its `Deserialize` impl.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = value_from_str(s)?;
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON text into the generic [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // slicing at a char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let x = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(x)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_digits_start {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(x) = text.parse::<i64>() {
                    return Ok(Value::Int(x));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
            // Out-of-range integer: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // force a decimal point so the value reads back as a float.
                let s = format!("{x}");
                let is_integral = !s.contains('.') && !s.contains('e') && !s.contains('E');
                out.push_str(&s);
                if is_integral {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"a\":1,\"b\":[true,null],\"c\":1.5,\"d\":2.0}"
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = value_from_str(
            r#" {"u": 18446744073709551615, "i": -3, "f": 2.5, "e": 1e3,
                "s": "a\"b\\c\n\u00e9\ud83d\ude00", "t": true, "nil": null,
                "arr": [1, [2], {}], "obj": {"nested": []}} "#,
        )
        .unwrap();
        assert_eq!(v.get("u"), Some(&Value::UInt(u64::MAX)));
        assert_eq!(v.get("i"), Some(&Value::Int(-3)));
        assert_eq!(v.get("f"), Some(&Value::Float(2.5)));
        assert_eq!(v.get("e"), Some(&Value::Float(1000.0)));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\né😀"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("nil"), Some(&Value::Null));
        assert_eq!(
            v.get("arr"),
            Some(&Value::Array(vec![
                Value::UInt(1),
                Value::Array(vec![Value::UInt(2)]),
                Value::Object(vec![]),
            ]))
        );
    }

    #[test]
    fn integer_trees_round_trip_bit_for_bit() {
        let v = Value::Object(vec![
            ("src".into(), Value::UInt(3)),
            ("dst".into(), Value::UInt(7)),
            ("round".into(), Value::UInt(12)),
            (
                "body".into(),
                Value::Array(vec![Value::UInt(0), Value::UInt(u64::MAX)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let parsed = value_from_str(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(to_string(&parsed).unwrap(), text);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let pair: (u32, String) = from_str(r#"[7,"x"]"#).unwrap();
        assert_eq!(pair, (7, "x".to_string()));
        assert!(from_str::<Vec<u64>>("{}").is_err());
    }

    #[test]
    fn malformed_inputs_are_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "[1] x",
            "-",
            "{\"a\":}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\u{1}\"",
        ] {
            assert!(value_from_str(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn floats_and_pretty_round_trip() {
        let text = to_string(&Value::Float(1.0)).unwrap();
        assert_eq!(text, "1.0");
        assert_eq!(value_from_str(&text).unwrap(), Value::Float(1.0));
        let v = Value::Array(vec![Value::UInt(1), Value::Str("x".into())]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }
}
