//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Implemented directly on top of `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline).  Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (and unit structs),
//! * enums with unit, tuple and struct variants,
//! * no generic parameters (a compile error asks for the real serde instead).
//!
//! Serialization follows serde's default externally-tagged representation so
//! the emitted JSON stays stable if the workspace ever moves to real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct (field names in declaration order); empty for unit
    /// structs.
    Struct(Vec<String>),
    /// Tuple struct with the given arity.
    TupleStruct(usize),
    /// Enum variants.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `i`, returning the next meaningful index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` is always followed by a bracket group in an attribute.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the named fields of a brace group, returning field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:` then the type; skip to the next top-level comma, keeping
        // track of angle-bracket depth so `Vec<(A, B)>`-style types survive.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the top-level comma-separated entries of a parenthesis group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_fields(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parses a `struct`/`enum` item into its name and [`Shape`].
fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde stand-in derive does not support generics on `{name}`; \
                 implement Serialize manually or vendor real serde"
            );
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::Struct(Vec::new()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde stand-in derive only supports struct/enum, got `{other}`"),
    };
    (name, shape)
}

/// Derives the stand-in `Serialize` (JSON tree construction).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())")
                    }
                    Variant::Tuple(v, 1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(f0))])"
                    ),
                    Variant::Tuple(v, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))])",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    Variant::Struct(v, fields) => {
                        let binds = fields.join(", ");
                        let vals: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Emits code reconstructing a named-field set from an object, as a struct
/// literal body `f1: ..., f2: ...` (field lookup is by name, extra keys are
/// ignored, missing keys are typed errors — mirroring serde's defaults).
fn named_fields_body(context: &str, obj_expr: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize({obj_expr}.iter()\
                 .find(|(k, _)| k == \"{f}\").map(|(_, v)| v)\
                 .ok_or_else(|| ::serde::DeError(\
                 \"missing field `{f}` in {context}\".to_string()))?)?"
            )
        })
        .collect();
    inits.join(", ")
}

/// Derives the stand-in `Deserialize` (JSON tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let inits = named_fields_body(&name, "entries", &fields);
            format!(
                "match value {{\n\
                     ::serde::Value::Object(entries) => {{\n\
                         let _ = &entries;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"object for {name}\", other)),\n\
                 }}"
            )
        }
        Shape::TupleStruct(arity) => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "match value.as_array() {{\n\
                     Some(items) if items.len() == {arity} => \
                         Ok({name}({inits})),\n\
                     _ => Err(::serde::DeError::expected(\
                         \"array of length {arity} for {name}\", value)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            // Externally tagged: unit variants are plain strings, data-bearing
            // variants are single-key objects `{"Variant": payload}`.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!("\"{v}\" => Ok({name}::{v})")),
                    _ => None,
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(v, 1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(payload)?))"
                    )),
                    Variant::Tuple(v, arity) => {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => match payload.as_array() {{\n\
                                 Some(items) if items.len() == {arity} => \
                                     Ok({name}::{v}({inits})),\n\
                                 _ => Err(::serde::DeError::expected(\
                                     \"array of length {arity} for {name}::{v}\", payload)),\n\
                             }}",
                            inits = inits.join(", ")
                        ))
                    }
                    Variant::Struct(v, fields) => {
                        let inits = named_fields_body(&format!("{name}::{v}"), "entries", fields);
                        Some(format!(
                            "\"{v}\" => match payload {{\n\
                                 ::serde::Value::Object(entries) => {{\n\
                                     let _ = &entries;\n\
                                     Ok({name}::{v} {{ {inits} }})\n\
                                 }}\n\
                                 other => Err(::serde::DeError::expected(\
                                     \"object for {name}::{v}\", other)),\n\
                             }}"
                        ))
                    }
                })
                .collect();
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {},\n\
                         other => Err(::serde::DeError(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},",
                    unit_arms.join(",\n")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {},\n\
                             other => Err(::serde::DeError(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},",
                    tagged_arms.join(",\n")
                )
            };
            format!(
                "match value {{\n\
                     {unit_match}\n\
                     {tagged_match}\n\
                     other => Err(::serde::DeError::expected(\
                         \"externally tagged {name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
