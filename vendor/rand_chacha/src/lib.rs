//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! implementing the in-tree [`rand`] traits.
//!
//! The keystream is the standard ChaCha construction (Bernstein) with 8
//! rounds; the seed is the 256-bit key, the stream/nonce words are zero and
//! the 64-bit block counter advances per block.  The byte stream is *not*
//! guaranteed to match the real `rand_chacha` crate's word ordering — only
//! determinism from the seed matters to this workspace.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u32().count_ones();
        }
        // 32_000 bits, expect ~16_000 set; allow generous slack.
        assert!((15_000..17_000).contains(&ones), "bias: {ones}");
    }

    #[test]
    fn chacha_quarter_round_test_vector() {
        // RFC 7539 2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }
}
