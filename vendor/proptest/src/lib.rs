//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: range / tuple / `any` / `prop_map` / collection-vec
//! strategies, `ProptestConfig::with_cases`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its case index and message;
//!   cases are fully deterministic (seeded from the test name and case
//!   index), so a failure reproduces exactly under `cargo test`.
//! * Strategies are simple `(&self, &mut TestRng) -> Value` generators.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case random source.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for `case` of the named test (FNV-1a of the name mixed
    /// with the case index, so every test gets an independent stream).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | 0x5EED)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Execution configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len` and elements
        /// drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.len.start < self.len.end {
                    rng.gen_range(self.len.start..self.len.end)
                } else {
                    self.len.start
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Builds a vector strategy.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0.5f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1u8..5, 10usize..20).prop_map(|(a, b)| a as usize * b)) {
            prop_assert!((10..100).contains(&pair));
        }

        #[test]
        fn collection_vec_lengths(v in prop::collection::vec(any::<u16>(), 0..30)) {
            prop_assert!(v.len() < 30);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), (0u64..1000).generate(&mut b));
    }
}
