//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides exactly what this workspace uses: [`RngCore`] / [`Rng`] with
//! `gen`, `gen_bool`, `gen_range`, [`SeedableRng::seed_from_u64`], a
//! deterministic [`rngs::StdRng`] (xoshiro256++) and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).  All generators are fully
//! deterministic from their seed; statistical quality is more than adequate
//! for the randomized graph constructions and property tests in this
//! repository.  The value streams are *not* bit-compatible with the real
//! `rand` crate — determinism within this workspace is the contract.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Random {
    /// Samples a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`; `lo < hi` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The largest representable value (used for inclusive ranges).
    fn successor(self) -> Option<Self>;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift with
/// rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut m = (rng.next_u64() as u128).wrapping_mul(span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + uniform_below(rng, span) as $t
            }

            fn successor(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        match hi.successor() {
            Some(end) => T::sample_half_open(rng, lo, end),
            // `hi` is the type maximum: fall back to masking-free full draw
            // shifted into place (only reachable for degenerate ranges the
            // workspace never uses).
            None => T::sample_half_open(rng, lo, hi),
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::random(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: impl SampleRange<T>) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (like real rand).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander and the engine behind [`SeedableRng::seed_from_u64`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from an explicit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[8 * i..8 * i + 8].try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(&mut coerce(rng), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Adapter so unsized `R` can feed the sized-generic helper.
    fn coerce<R: RngCore + ?Sized>(rng: &mut R) -> impl RngCore + '_ {
        struct ByRef<'a, R: ?Sized>(&'a mut R);
        impl<R: RngCore + ?Sized> RngCore for ByRef<'_, R> {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        ByRef(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let w: u64 = rng.gen_range(1..=32);
            assert!((1..=32).contains(&w));
        }
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice sorted");
    }
}
