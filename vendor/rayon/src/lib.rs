//! Offline stand-in for `rayon`, covering the indexed data-parallel subset
//! this workspace uses: `into_par_iter()` on integer ranges, `par_iter()` on
//! slices, `map` / `map_init` / `for_each` / `collect::<Vec<_>>()`.
//!
//! Execution model: the driving thread splits the index space into one
//! contiguous chunk per worker and runs the chunks on `std::thread::scope`
//! threads (no unsafe, no global pool).  Results are stitched back together
//! in index order, so **output order is deterministic and identical to the
//! sequential execution** regardless of thread scheduling — a property the
//! reproduction relies on for seed-stable tables.
//!
//! Knobs and guards:
//!
//! * `RAYON_NUM_THREADS` (same variable as real rayon) caps the worker count;
//!   unset, the count is `std::thread::available_parallelism()`.
//! * Nested parallel regions run sequentially (a thread-local flag): the
//!   outermost fan-out (per scenario row / per APSP source block) gets the
//!   cores, inner oracles stay allocation-lean single-threaded.
//! * Tiny inputs (`len < min_len`, default 2) skip thread spawning entirely.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Number of worker threads a parallel region may use.
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// An indexed source of `len` independent items.
pub trait ParSource: Sync {
    /// Item produced at each index.
    type Item: Send;

    /// Number of items.
    fn sp_len(&self) -> usize;

    /// Produces the item at `i` (`i < sp_len()`).
    fn sp_get(&self, i: usize) -> Self::Item;

    /// Runs a contiguous chunk, appending the produced items to `out` in
    /// index order.  Sources with per-chunk state override this.
    fn sp_run_chunk(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        for i in range {
            out.push(self.sp_get(i));
        }
    }

    /// Runs a contiguous chunk for side effects only.
    fn sp_drive_chunk(&self, range: Range<usize>) {
        for i in range {
            let _ = self.sp_get(i);
        }
    }
}

/// Integer-range source.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;

            fn sp_len(&self) -> usize {
                self.len
            }

            fn sp_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSource<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    source: RangeSource {
                        start: self.start,
                        len: (self.end.saturating_sub(self.start)) as usize,
                    },
                }
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// Borrowed-slice source.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn sp_len(&self) -> usize {
        self.slice.len()
    }

    fn sp_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// `map` combinator.
pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> ParSource for MapSource<S, F>
where
    S: ParSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn sp_len(&self) -> usize {
        self.inner.sp_len()
    }

    fn sp_get(&self, i: usize) -> R {
        (self.f)(self.inner.sp_get(i))
    }
}

/// `map_init` combinator: per-chunk scratch state (e.g. a reusable Dijkstra
/// workspace) built once per worker chunk instead of once per item.
pub struct MapInitSource<S, INIT, F> {
    inner: S,
    init: INIT,
    f: F,
}

impl<S, INIT, T, F, R> ParSource for MapInitSource<S, INIT, F>
where
    S: ParSource,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn sp_len(&self) -> usize {
        self.inner.sp_len()
    }

    fn sp_get(&self, i: usize) -> R {
        let mut state = (self.init)();
        (self.f)(&mut state, self.inner.sp_get(i))
    }

    fn sp_run_chunk(&self, range: Range<usize>, out: &mut Vec<R>) {
        let mut state = (self.init)();
        for i in range {
            out.push((self.f)(&mut state, self.inner.sp_get(i)));
        }
    }

    fn sp_drive_chunk(&self, range: Range<usize>) {
        let mut state = (self.init)();
        for i in range {
            let _ = (self.f)(&mut state, self.inner.sp_get(i));
        }
    }
}

/// A parallel iterator over an indexed source.
pub struct ParIter<S> {
    source: S,
}

impl<S: ParSource> ParIter<S> {
    /// Maps each item through `f`.
    pub fn map<R: Send, F: Fn(S::Item) -> R + Sync>(self, f: F) -> ParIter<MapSource<S, F>> {
        ParIter {
            source: MapSource {
                inner: self.source,
                f,
            },
        }
    }

    /// Maps with per-chunk scratch state created by `init`.
    pub fn map_init<T, INIT, R, F>(self, init: INIT, f: F) -> ParIter<MapInitSource<S, INIT, F>>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            source: MapInitSource {
                inner: self.source,
                init,
                f,
            },
        }
    }

    /// Accepted for rayon compatibility; chunking is already coarse.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Collects the items in index order.
    pub fn collect<C: FromParIter<S::Item>>(self) -> C {
        C::from_par_source(self.source)
    }

    /// Runs `f` on every item (index order within a chunk; chunks parallel).
    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        let mapped = MapSource {
            inner: self.source,
            f: move |x| f(x),
        };
        drive(&mapped);
    }
}

/// Collection types a [`ParIter`] can collect into.
pub trait FromParIter<T> {
    /// Builds the collection from the source.
    fn from_par_source<S: ParSource<Item = T>>(source: S) -> Self;
}

impl<T: Send> FromParIter<T> for Vec<T> {
    fn from_par_source<S: ParSource<Item = T>>(source: S) -> Self {
        execute(&source)
    }
}

fn plan(len: usize) -> Option<(usize, usize)> {
    let threads = configured_threads().min(len);
    if threads <= 1 || len < 2 || IN_PARALLEL_REGION.with(Cell::get) {
        return None;
    }
    Some((threads, len.div_ceil(threads)))
}

fn execute<S: ParSource>(source: &S) -> Vec<S::Item> {
    let len = source.sp_len();
    let Some((threads, chunk)) = plan(len) else {
        let mut out = Vec::with_capacity(len);
        source.sp_run_chunk(0..len, &mut out);
        return out;
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let range = t * chunk..len.min((t + 1) * chunk);
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|f| f.set(true));
                    let mut out = Vec::with_capacity(range.len());
                    source.sp_run_chunk(range, &mut out);
                    out
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

fn drive<S: ParSource>(source: &S) {
    let len = source.sp_len();
    let Some((threads, chunk)) = plan(len) else {
        source.sp_drive_chunk(0..len);
        return;
    };
    std::thread::scope(|scope| {
        for t in 0..threads {
            let range = t * chunk..len.min((t + 1) * chunk);
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|f| f.set(true));
                source.sp_drive_chunk(range);
            });
        }
    });
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Creates a parallel iterator borrowing from `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_state_is_per_chunk() {
        let out: Vec<usize> = (0usize..64)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            })
            .collect();
        // Within each chunk the scratch grows monotonically from 1.
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&c| c >= 1));
        assert_eq!(out[0], 1);
    }

    #[test]
    fn nested_regions_do_not_explode() {
        let out: Vec<usize> = (0usize..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0usize..8).into_par_iter().map(|j| i * 8 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0usize..8)
            .map(|i| (0usize..8).map(|j| i * 8 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..500).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<u32> = (5u32..5).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
