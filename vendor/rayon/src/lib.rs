//! Offline stand-in for `rayon`, covering the indexed data-parallel subset
//! this workspace uses: `into_par_iter()` on integer ranges, `par_iter()` on
//! slices, `map` / `map_init` / `with_min_len` / `for_each` /
//! `collect::<Vec<_>>()`, plus [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! for running a region on an explicitly sized pool (the determinism tests
//! sweep pool sizes in-process this way).
//!
//! # Execution model
//!
//! A **persistent work-stealing pool** (see `CONCURRENCY.md` at the workspace
//! root for the full design and the determinism argument):
//!
//! * Worker threads are spawned **lazily** on the first parallel region and
//!   live for the rest of the process (`RAYON_NUM_THREADS` caps the compute
//!   width, like real rayon; unset, it is
//!   `std::thread::available_parallelism()`).  A pool of width `T` runs
//!   `T − 1` workers — the thread driving a region is the `T`-th compute
//!   lane, so `RAYON_NUM_THREADS=1` never spawns anything.
//! * Each worker owns a **chunk deque**: it pushes and pops at the back
//!   (LIFO, cache-warm), thieves steal from the front (FIFO, biggest pieces
//!   first).  Non-worker threads submit through a shared injector queue.
//! * Regions split **adaptively**: a range is halved only while another
//!   thread is hungry (steal-driven subdivision) or while the piece is still
//!   larger than `len / (4·T)`, and never below the iterator's
//!   [`ParIter::with_min_len`] floor.  Small regions therefore run as one or
//!   two chunks instead of paying a full fan-out.
//! * **Nested regions are parallel**: a worker entering an inner region
//!   pushes the sub-chunks onto its own deque (where siblings steal them)
//!   and helps until the inner region completes.  The thread-local
//!   sequential-nesting guard of the previous executor is gone.
//! * Results are stitched back in **index order** — output is bit-identical
//!   to the sequential execution regardless of thread count, steals or split
//!   points, which the seed-stable tables rely on.
//!
//! A panic inside a chunk is caught on the worker, surfaced on the thread
//! that drove the region (after the region's other chunks finish), and
//! leaves the pool usable.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Pool plumbing
// ---------------------------------------------------------------------------

/// One unit of schedulable work: a contiguous index range of a region,
/// type-erased so the scheduler is monomorphization-free.
///
/// `region` points at the driving thread's stack frame (a `RegionState<S>`).
/// That frame provably outlives the task: the driver does not return until
/// the region's `remaining` item count hits zero, and every spawned range
/// decrements `remaining` by its length exactly once, after running.
struct RawTask {
    region: *const (),
    run: unsafe fn(*const (), usize, usize),
    start: usize,
    end: usize,
    /// Never split below this many items.
    min_len: usize,
    /// Split (even unprompted by steals) while larger than this, so one
    /// worker cannot monopolize a region's tail in a single giant chunk.
    cap: usize,
}

// SAFETY: the raw pointer is only dereferenced while the owning region is
// alive (see the `region` field docs); the pointee (`RegionState<S>`) is
// only accessed through `&self` methods whose shared state is atomics and
// mutexes, and `S: Sync` is enforced where the pointer is created.
unsafe impl Send for RawTask {}

/// Shared state of one pool: the deques, the injector, and the sleep/wake
/// machinery.  Owned by an `Arc` held by the workers, the [`ThreadPool`]
/// handle (if any) and the thread-local context stack.
struct PoolShared {
    /// One deque per worker thread (back = owner side, front = steal side).
    deques: Vec<Mutex<VecDeque<RawTask>>>,
    /// Submission queue for threads that are not workers of this pool.
    injector: Mutex<VecDeque<RawTask>>,
    /// Tasks currently sitting in `deques` + `injector`.
    queued: AtomicUsize,
    /// Threads currently hungry (searching for a task, parked, or waiting on
    /// a region with nothing to help with).  The split heuristic reads this.
    idle: AtomicUsize,
    /// Workers parked on `wakeup`.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Compute width `T` (workers + the driving thread).
    threads: usize,
}

impl PoolShared {
    /// Creates the shared state and spawns `threads - 1` workers.
    fn spawn(threads: usize) -> Arc<PoolShared> {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads: threads.max(1),
        });
        for index in 0..workers {
            let pool = Arc::clone(&shared);
            LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
            std::thread::Builder::new()
                .name(format!("rayon-standin-{index}"))
                .spawn(move || worker_loop(pool, index))
                .expect("failed to spawn pool worker");
        }
        shared
    }

    /// Enqueues a task: on the caller's own deque if it is a worker of this
    /// pool, otherwise on the injector.  Wakes a parked worker if any.
    fn push(&self, me: Option<usize>, task: RawTask) {
        match me {
            Some(i) => self.deques[i].lock().unwrap().push_back(task),
            None => self.injector.lock().unwrap().push_back(task),
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().unwrap();
            self.wakeup.notify_one();
        }
    }

    /// Own deque (back) → injector (front) → steal (front of other deques).
    fn find_task(&self, me: Option<usize>) -> Option<RawTask> {
        if let Some(i) = me {
            if let Some(task) = self.deques[i].lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        let n = self.deques.len();
        let offset = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (offset + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(task) = self.deques[j].lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(task);
            }
        }
        None
    }

    /// Runs one task: adaptively splits off right halves (pushed for
    /// thieves) while someone is hungry or the piece exceeds its cap, then
    /// executes the rest as one contiguous chunk.
    fn run_task(&self, me: Option<usize>, task: RawTask) {
        let RawTask {
            region,
            run,
            start,
            mut end,
            min_len,
            cap,
        } = task;
        while end - start >= 2 * min_len
            && (end - start > cap || self.idle.load(Ordering::SeqCst) > 0)
        {
            let mid = start + (end - start) / 2;
            self.push(
                me,
                RawTask {
                    region,
                    run,
                    start: mid,
                    end,
                    min_len,
                    cap,
                },
            );
            end = mid;
        }
        // SAFETY: the region outlives its tasks (see `RawTask::region`).
        unsafe { run(region, start, end) }
    }

    /// Work loop of a thread waiting for a region to complete: help with any
    /// available task, otherwise park briefly on the region's completion
    /// signal.  The helper may pick up chunks of *other* live regions — that
    /// only delays this region's return by one chunk, never deadlocks,
    /// because every task runs to completion (nested regions recurse into
    /// this same loop).
    fn wait_region(&self, me: Option<usize>, region: &RegionSync) {
        while region.remaining.load(Ordering::Acquire) != 0 {
            self.idle.fetch_add(1, Ordering::SeqCst);
            let task = self.find_task(me);
            self.idle.fetch_sub(1, Ordering::SeqCst);
            match task {
                Some(task) => self.run_task(me, task),
                None => {
                    let guard = region.done_lock.lock().unwrap();
                    if region.remaining.load(Ordering::Acquire) != 0 {
                        self.idle.fetch_add(1, Ordering::SeqCst);
                        let _ = region
                            .done
                            .wait_timeout(guard, Duration::from_millis(1))
                            .unwrap();
                        self.idle.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }
}

/// Number of pool worker threads currently alive, across all pools
/// (including the global one).  Incremented before a worker is spawned and
/// decremented when its loop exits, so after [`ThreadPool`] drop (which
/// joins) the count provably excludes that pool's workers — the CI leak
/// check asserts this.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Current number of live pool worker threads, across all pools (including
/// the global one).  The count for a pool is registered before its workers
/// are spawned and deregistered as each worker loop exits, so after a
/// [`ThreadPool`] drop (which joins) it provably excludes that pool — the
/// CI pool-leak check is built on this.
pub fn live_worker_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

fn worker_loop(pool: Arc<PoolShared>, index: usize) {
    CURRENT_WORKER.with(|slot| *slot.borrow_mut() = Some((Arc::clone(&pool), index)));
    loop {
        if let Some(task) = pool.find_task(Some(index)) {
            pool.run_task(Some(index), task);
            continue;
        }
        if pool.shutdown.load(Ordering::SeqCst) {
            break;
        }
        pool.idle.fetch_add(1, Ordering::SeqCst);
        let guard = pool.sleep_lock.lock().unwrap();
        pool.sleepers.fetch_add(1, Ordering::SeqCst);
        // Re-check under the lock: a `push` increments `queued` before
        // probing `sleepers`, so either we see the task here or the pusher
        // sees us and notifies while we wait.  The timeout is a belt-and-
        // braces backstop, not a correctness requirement.
        if pool.queued.load(Ordering::SeqCst) == 0 && !pool.shutdown.load(Ordering::SeqCst) {
            let _ = pool
                .wakeup
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
        }
        pool.sleepers.fetch_sub(1, Ordering::SeqCst);
        pool.idle.fetch_sub(1, Ordering::SeqCst);
    }
    CURRENT_WORKER.with(|slot| *slot.borrow_mut() = None);
    LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
}

type WorkerContext = Option<(Arc<PoolShared>, usize)>;

thread_local! {
    /// Set for the lifetime of a pool worker thread: its pool and deque index.
    static CURRENT_WORKER: RefCell<WorkerContext> = const { RefCell::new(None) };
    /// Stack of pools entered via [`ThreadPool::install`] on this thread.
    static INSTALLED: RefCell<Vec<Arc<PoolShared>>> = const { RefCell::new(Vec::new()) };
}

fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The process-wide default pool, spawned on first use by a parallel region
/// (never for `RAYON_NUM_THREADS=1`, where every region runs inline).
fn global_pool() -> Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| PoolShared::spawn(configured_threads())))
}

/// Resolves the pool a region started on this thread should run on:
/// a worker thread keeps its own pool, a thread inside
/// [`ThreadPool::install`] uses the installed pool, anything else the
/// global pool (`None` here, materialized lazily).
fn current_context() -> (Option<Arc<PoolShared>>, Option<usize>) {
    let worker = CURRENT_WORKER.with(|slot| slot.borrow().clone());
    if let Some((pool, index)) = worker {
        return (Some(pool), Some(index));
    }
    let installed = INSTALLED.with(|stack| stack.borrow().last().cloned());
    (installed, None)
}

/// Number of worker threads a parallel region started on this thread may use
/// (the installed/worker pool's width, or the `RAYON_NUM_THREADS` default).
pub fn current_num_threads() -> usize {
    match current_context() {
        (Some(pool), _) => pool.threads,
        (None, _) => configured_threads(),
    }
}

// ---------------------------------------------------------------------------
// Explicit pools
// ---------------------------------------------------------------------------

/// Builder for an explicitly sized [`ThreadPool`], mirroring real rayon's
/// `ThreadPoolBuilder::new().num_threads(n).build()`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`].  This stand-in cannot
/// actually fail to build; the `Result` mirrors the real crate's signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default width (`RAYON_NUM_THREADS`).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's compute width (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Builds the pool, spawning `num_threads - 1` workers eagerly.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(configured_threads);
        Ok(ThreadPool {
            shared: PoolShared::spawn(threads),
        })
    }
}

/// An explicitly sized pool.  Dropping it shuts the workers down and joins
/// them (observable via [`live_worker_threads`]).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
}

impl ThreadPool {
    /// Runs `f` on the calling thread with this pool installed as the
    /// ambient pool: every parallel region started inside `f` (however
    /// deeply nested) fans out on this pool's workers, with the calling
    /// thread participating as one compute lane.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.shared)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// This pool's compute width (workers + the installing thread).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // By the time a pool can be dropped no region is live on it
        // (`install` borrows the pool for the whole region), so the deques
        // are empty and the workers are parked or about to park.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep_lock.lock().unwrap();
            self.shared.wakeup.notify_all();
        }
        // Wait for every worker to exit its loop; each one drops its TLS
        // `Arc` on the way out, and the 10 ms park backstop bounds the wait
        // even if a wakeup is lost.
        while Arc::strong_count(&self.shared) > 1 {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------------

/// Completion signalling of one region (split out of the generic
/// [`RegionState`] so pool code can stay monomorphization-free).
///
/// Lives behind an `Arc`: the worker that completes a region's *last* item
/// must lock `done_lock` and signal `done` **after** its decrement made
/// `remaining` zero — at which point the driver is free to observe
/// completion (its wait has a timeout, so it does not need the signal) and
/// pop the `RegionState` off its stack.  Each chunk therefore clones the
/// `Arc` up front and signals through the clone, never through region
/// memory, so the signal cannot race the region's destruction.
struct RegionSync {
    /// Items not yet executed.  The region is complete at zero.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// First panic payload raised by any chunk, rethrown by the driver.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Completed chunks of a `collect` region, as `(chunk start, items)`.
type ChunkSink<T> = Mutex<Vec<(usize, Vec<T>)>>;

/// Per-region state referenced (via raw pointer) by that region's tasks.
struct RegionState<S: ParSource> {
    source: *const S,
    /// `Some` for `collect` regions: completed chunks, stitched in index
    /// order at the end.  `None` for `for_each`.
    sink: Option<ChunkSink<S::Item>>,
    sync: Arc<RegionSync>,
}

/// Type-erased chunk entry point for a region over source type `S`.
///
/// # Safety
/// `region` must point to a live `RegionState<S>` whose `source` is valid;
/// guaranteed by the region driver not returning before `remaining` reaches
/// zero.  Every access to `region` below happens before this chunk's
/// decrement (while at least `end - start` items are outstanding, so the
/// driver provably has not returned); the completion signal goes through an
/// owned `Arc` clone, not through `region`.
unsafe fn exec_chunk<S: ParSource>(region: *const (), start: usize, end: usize) {
    let region = &*(region as *const RegionState<S>);
    let sync = Arc::clone(&region.sync);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let source = &*region.source;
        match &region.sink {
            Some(sink) => {
                let mut items = Vec::with_capacity(end - start);
                source.sp_run_chunk(start..end, &mut items);
                sink.lock().unwrap().push((start, items));
            }
            None => source.sp_drive_chunk(start..end),
        }
    }));
    if let Err(payload) = result {
        let mut slot = sync.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    // `region` must not be touched past this decrement: once `remaining`
    // hits zero the driver may return and destroy the `RegionState`.
    if sync.remaining.fetch_sub(end - start, Ordering::AcqRel) == end - start {
        let _guard = sync.done_lock.lock().unwrap();
        sync.done.notify_all();
    }
}

/// Drives one parallel region to completion and returns the collected items
/// (`None` for `for_each` regions).
fn run_region<S: ParSource>(source: &S, min_len: usize, collect: bool) -> Option<Vec<S::Item>> {
    let len = source.sp_len();
    let min = min_len.max(1);
    let (pool, me) = current_context();
    let threads = pool.as_ref().map_or_else(configured_threads, |p| p.threads);
    if threads <= 1 || len <= min {
        if collect {
            let mut out = Vec::with_capacity(len);
            source.sp_run_chunk(0..len, &mut out);
            return Some(out);
        }
        source.sp_drive_chunk(0..len);
        return None;
    }
    let pool = pool.unwrap_or_else(global_pool);
    let region = RegionState::<S> {
        source,
        sink: collect.then(|| Mutex::new(Vec::new())),
        sync: Arc::new(RegionSync {
            remaining: AtomicUsize::new(len),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
    };
    let task = RawTask {
        region: (&region as *const RegionState<S>).cast(),
        run: exec_chunk::<S>,
        start: 0,
        end: len,
        min_len: min,
        cap: len.div_ceil(4 * threads).max(min),
    };
    pool.run_task(me, task);
    pool.wait_region(me, &region.sync);
    if let Some(payload) = region.sync.panic.lock().unwrap().take() {
        std::panic::resume_unwind(payload);
    }
    region.sink.map(|sink| {
        let mut chunks = sink.into_inner().unwrap();
        chunks.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(len);
        for (_, items) in chunks {
            out.extend(items);
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Sources and iterators
// ---------------------------------------------------------------------------

/// An indexed source of `len` independent items.
pub trait ParSource: Sync {
    /// Item produced at each index.
    type Item: Send;

    /// Number of items.
    fn sp_len(&self) -> usize;

    /// Produces the item at `i` (`i < sp_len()`).
    fn sp_get(&self, i: usize) -> Self::Item;

    /// Runs a contiguous chunk, appending the produced items to `out` in
    /// index order.  Sources with per-chunk state override this.
    fn sp_run_chunk(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        for i in range {
            out.push(self.sp_get(i));
        }
    }

    /// Runs a contiguous chunk for side effects only.
    fn sp_drive_chunk(&self, range: Range<usize>) {
        for i in range {
            let _ = self.sp_get(i);
        }
    }
}

/// Integer-range source.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;

            fn sp_len(&self) -> usize {
                self.len
            }

            fn sp_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSource<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    source: RangeSource {
                        start: self.start,
                        len: (self.end.saturating_sub(self.start)) as usize,
                    },
                    min_len: DEFAULT_MIN_LEN,
                }
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// Borrowed-slice source.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn sp_len(&self) -> usize {
        self.slice.len()
    }

    fn sp_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// `map` combinator.
pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> ParSource for MapSource<S, F>
where
    S: ParSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn sp_len(&self) -> usize {
        self.inner.sp_len()
    }

    fn sp_get(&self, i: usize) -> R {
        (self.f)(self.inner.sp_get(i))
    }
}

/// `map_init` combinator: per-chunk scratch state (e.g. a reusable Dijkstra
/// workspace) built once per worker chunk instead of once per item.
///
/// Adaptive splitting makes chunk *boundaries* depend on steal timing, so a
/// caller must not let the scratch value influence per-item output — the
/// workspace pattern (scratch as reusable buffers, reset per item) is the
/// intended use, and what keeps results thread-count-independent.
pub struct MapInitSource<S, INIT, F> {
    inner: S,
    init: INIT,
    f: F,
}

impl<S, INIT, T, F, R> ParSource for MapInitSource<S, INIT, F>
where
    S: ParSource,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn sp_len(&self) -> usize {
        self.inner.sp_len()
    }

    fn sp_get(&self, i: usize) -> R {
        let mut state = (self.init)();
        (self.f)(&mut state, self.inner.sp_get(i))
    }

    fn sp_run_chunk(&self, range: Range<usize>, out: &mut Vec<R>) {
        let mut state = (self.init)();
        for i in range {
            out.push((self.f)(&mut state, self.inner.sp_get(i)));
        }
    }

    fn sp_drive_chunk(&self, range: Range<usize>) {
        let mut state = (self.init)();
        for i in range {
            let _ = (self.f)(&mut state, self.inner.sp_get(i));
        }
    }
}

/// Default minimum chunk length when [`ParIter::with_min_len`] is not called:
/// regions of two or more items may fan out.  Hot call sites tune this —
/// `1` where every item is a full graph sweep, larger where items are cheap
/// `O(n)` row passes (see `CONCURRENCY.md`, "Choosing `min_len`").
pub const DEFAULT_MIN_LEN: usize = 2;

/// A parallel iterator over an indexed source.
pub struct ParIter<S> {
    source: S,
    min_len: usize,
}

impl<S: ParSource> ParIter<S> {
    /// Maps each item through `f`.
    pub fn map<R: Send, F: Fn(S::Item) -> R + Sync>(self, f: F) -> ParIter<MapSource<S, F>> {
        ParIter {
            source: MapSource {
                inner: self.source,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Maps with per-chunk scratch state created by `init`.
    pub fn map_init<T, INIT, R, F>(self, init: INIT, f: F) -> ParIter<MapInitSource<S, INIT, F>>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            source: MapInitSource {
                inner: self.source,
                init,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Sets the minimum number of items a chunk may hold: adaptive splitting
    /// never subdivides below it, and a region of `min` or fewer items runs
    /// inline on the calling thread with no pool traffic at all.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Collects the items in index order.
    pub fn collect<C: FromParIter<S::Item>>(self) -> C {
        C::from_par_source(self.source, self.min_len)
    }

    /// Runs `f` on every item (index order within a chunk; chunks parallel).
    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        let mapped = MapSource {
            inner: self.source,
            f: move |x| f(x),
        };
        run_region(&mapped, self.min_len, false);
    }
}

/// Collection types a [`ParIter`] can collect into.
pub trait FromParIter<T> {
    /// Builds the collection from the source, never splitting chunks below
    /// `min_len` items.
    fn from_par_source<S: ParSource<Item = T>>(source: S, min_len: usize) -> Self;
}

impl<T: Send> FromParIter<T> for Vec<T> {
    fn from_par_source<S: ParSource<Item = T>>(source: S, min_len: usize) -> Self {
        run_region(&source, min_len, true).expect("collect region returns items")
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Creates a parallel iterator borrowing from `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Serializes the tests that build/drop pools: `cargo test` runs tests
    /// on parallel threads, and the process-global [`live_worker_threads`]
    /// counter (asserted by the leak check) would otherwise move under a
    /// concurrent pool's spawn or join.
    fn pool_test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_state_is_per_chunk() {
        let out: Vec<usize> = (0usize..64)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            })
            .collect();
        // Within each chunk the scratch grows monotonically from 1, and the
        // chunk containing index 0 starts at index 0.
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&c| c >= 1));
        assert_eq!(out[0], 1);
    }

    #[test]
    fn with_min_len_at_region_size_forces_one_inline_chunk() {
        let _serial = pool_test_guard();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0usize..64)
                .into_par_iter()
                .map_init(
                    || 0usize,
                    |count, _| {
                        *count += 1;
                        *count
                    },
                )
                .with_min_len(64)
                .collect()
        });
        // A single chunk means a single scratch counting 1..=64.
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_do_not_explode() {
        let out: Vec<usize> = (0usize..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0usize..8).into_par_iter().map(|j| i * 8 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        let expect: Vec<usize> = (0usize..8)
            .map(|i| (0usize..8).map(|j| i * 8 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_region_under_single_outer_item_uses_the_pool() {
        use std::collections::HashSet;
        let _serial = pool_test_guard();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<u64> = pool.install(|| {
            (0usize..1)
                .into_par_iter()
                .map(|_| {
                    // Inner region: enough items with enough work each that
                    // parked workers wake and steal.
                    let inner: Vec<u64> = (0u64..256)
                        .into_par_iter()
                        .with_min_len(1)
                        .map(|x| {
                            seen.lock().unwrap().insert(std::thread::current().id());
                            (0..50_000u64).fold(x, |a, b| a.wrapping_add(a ^ b))
                        })
                        .collect();
                    inner
                        .iter()
                        .copied()
                        .reduce(|a, b| a.wrapping_add(b))
                        .unwrap()
                })
                .collect()
        });
        let reference: Vec<u64> = (0u64..256)
            .map(|x| (0..50_000u64).fold(x, |a, b| a.wrapping_add(a ^ b)))
            .collect();
        assert_eq!(
            out[0],
            reference
                .iter()
                .copied()
                .reduce(|a, b| a.wrapping_add(b))
                .unwrap()
        );
        // The outer region has one item, so any second thread inside the
        // inner region proves nested parallelism (the old executor pinned
        // nested regions to the one outer thread).
        assert!(
            seen.lock().unwrap().len() > 1,
            "inner region never left the outer worker"
        );
    }

    #[test]
    fn pool_sizes_produce_identical_results() {
        let _serial = pool_test_guard();
        let reference: Vec<u64> = (0u64..512).map(|x| x.wrapping_mul(x) ^ 17).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let out: Vec<u64> = pool.install(|| {
                (0u64..512)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|x| x.wrapping_mul(x) ^ 17)
                    .collect()
            });
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn skewed_chunk_costs_force_steals_and_preserve_order() {
        // First items are ~1000x more expensive than the tail: the worker
        // that takes the head chunk stalls, so the tail must be stolen and
        // subdivided — output order must not care.
        let cost = |i: u64| if i < 8 { 200_000u64 } else { 200 };
        let work = |i: u64| (0..cost(i)).fold(i, |a, b| a.wrapping_add(a ^ b));
        let reference: Vec<u64> = (0u64..512).map(work).collect();
        let _serial = pool_test_guard();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u64> = pool.install(|| {
            (0u64..512)
                .into_par_iter()
                .with_min_len(1)
                .map(work)
                .collect()
        });
        assert_eq!(out, reference);
    }

    #[test]
    fn pool_drop_joins_all_workers() {
        let _serial = pool_test_guard();
        // Force the lazily spawned global pool into existence first (a
        // no-op on 1-thread configs): it persists for the process, so no
        // concurrent test can move the counter between the reads below.
        let _: Vec<u32> = (0u32..1024)
            .into_par_iter()
            .with_min_len(1)
            .map(|x| x)
            .collect();
        let baseline = live_worker_threads();
        {
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            assert_eq!(pool.current_num_threads(), 4);
            // 3 workers (the installing thread is the 4th lane), counted
            // before spawn so the assertion cannot race thread start-up.
            assert_eq!(live_worker_threads(), baseline + 3);
            let sum: Vec<u64> = pool.install(|| {
                (0u64..1024)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|x| x / 2)
                    .collect()
            });
            assert_eq!(sum.len(), 1024);
        }
        assert_eq!(
            live_worker_threads(),
            baseline,
            "dropped pool leaked worker threads"
        );
    }

    #[test]
    fn panic_in_chunk_propagates_and_pool_survives() {
        let _serial = pool_test_guard();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let _: Vec<u64> = (0u64..128)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|x| {
                        if x == 37 {
                            panic!("boom");
                        }
                        x
                    })
                    .collect();
            })
        }));
        assert!(result.is_err(), "chunk panic must reach the caller");
        // The pool stays usable after a panicking region.
        let ok: Vec<u64> = pool.install(|| (0u64..64).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(ok, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let _serial = pool_test_guard();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..500).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<u32> = (5u32..5).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
