//! Offline stand-in for `criterion`: the same macro/builder surface the
//! workspace's benches use (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`),
//! backed by a simple wall-clock sampler.
//!
//! Each benchmark takes `sample_size` samples (default 10) after one warm-up
//! call; fast routines are batched so a sample never measures below ~1µs of
//! work.  The min / median / mean of the per-iteration time are printed in a
//! `name ... time: [min median mean]` line, deliberately close to criterion's
//! output format so humans and scripts can grep it the same way.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value laundering to keep the optimizer honest.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark routine and collects samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + batch-size calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let batch = if once < Duration::from_micros(1) {
            (Duration::from_micros(20).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{:<40} time: [{:>10.3?} {:>10.3?} {:>10.3?}]",
            self.name, id, min, median, mean
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id,
            median_ns: median.as_nanos() as u64,
        });
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into().id;
        self.run(id, f);
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u64,
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Results collected so far (inspectable by custom harnesses).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
